//! JournalFs: an ext4-like ordered-data journaling file system with delayed
//! allocation and injectable crash-consistency bugs.
//!
//! ext4 is the most mature of the file systems the paper studies and has the
//! fewest crash-consistency bugs (two of the 28). Its persistence model is
//! also the simplest for crash purposes: `fsync`/`fdatasync` force a commit
//! of the running journal transaction, which — in ordered-data mode — writes
//! out the affected data first and then the metadata. JournalFs mirrors this
//! by treating every persistence call as a full commit of the working tree,
//! except on the two buggy paths the paper's corpus exercises:
//!
//! * `fdatasync` after `fallocate(KEEP_SIZE)` beyond EOF fails to persist
//!   the extra allocation (known bug, workload 2).
//! * An `O_DIRECT` write past the on-disk size reaches the device but the
//!   on-disk `i_disksize` is not updated, so the file recovers with its old
//!   (smaller, possibly zero) size (known bug, workload 4).
//!
//! Direct writes are synchronous with respect to the device, which is why
//! CrashMonkey treats them as persistence points (see
//! `b3-crashmonkey::profiler`).

use b3_block::{BlockDevice, IoFlags, StateDelta};
use b3_vfs::diskfmt::{read_blob, write_blob, BlobRef, SuperBlock};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::fs::{FileSystem, FsSpec, GuaranteeProfile, WriteMode};
use b3_vfs::metadata::Metadata;
use b3_vfs::recover::{CommittedTreeCache, RecoverDelta};
use b3_vfs::tree::MemTree;
use b3_vfs::workload::FallocMode;
use b3_vfs::KernelEra;

/// JournalFs on-disk magic number.
pub const JOURNALFS_MAGIC: u32 = 0x4a52_4e4c; // "JRNL"

/// Which JournalFs crash-consistency bugs are active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalBugs {
    /// `fdatasync(2)` after `fallocate(KEEP_SIZE)` beyond EOF does not
    /// journal the new allocation; the blocks are lost after a crash.
    /// (Known bug: workload 2, "ext4: fix fdatasync(2) after fallocate(2)".)
    pub fdatasync_skips_falloc_beyond_eof: bool,
    /// A direct write extending the file past its on-disk size does not
    /// update `i_disksize`; after a crash the data blocks are allocated but
    /// the size is stale. (Known bug: workload 4, "ext4: update i_disksize
    /// if direct write past ondisk size".)
    pub direct_write_skips_disksize: bool,
}

impl JournalBugs {
    /// No injected bugs.
    pub fn none() -> Self {
        JournalBugs::default()
    }

    /// Every bug enabled.
    pub fn all() -> Self {
        JournalBugs {
            fdatasync_skips_falloc_beyond_eof: true,
            direct_write_skips_disksize: true,
        }
    }

    /// Bugs present in the given kernel era. Both known ext4 bugs were
    /// reported against 4.15-era kernels and fixed before 4.16.
    pub fn for_era(era: KernelEra) -> Self {
        use KernelEra::*;
        JournalBugs {
            fdatasync_skips_falloc_beyond_eof: era.bug_present(V3_12, Some(V4_16)),
            direct_write_skips_disksize: era.bug_present(V3_12, Some(V4_16)),
        }
    }
}

/// The ext4-like file system.
pub struct JournalFs {
    dev: Box<dyn BlockDevice>,
    sb: SuperBlock,
    bugs: JournalBugs,
    working: MemTree,
    committed: MemTree,
}

impl JournalFs {
    /// Formats and mounts a fresh JournalFs for the given kernel era.
    pub fn mkfs(mut dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<JournalFs> {
        Self::format(&mut dev)?;
        Self::mount_with_bugs(dev, JournalBugs::for_era(era))
    }

    fn format(dev: &mut Box<dyn BlockDevice>) -> FsResult<()> {
        let tree = MemTree::new();
        let mut sb = SuperBlock::new(JOURNALFS_MAGIC);
        sb.tree = write_blob(dev.as_mut(), &mut sb, &tree.encode(), IoFlags::META)?;
        sb.write_to(dev.as_mut())
    }

    /// Mounts an existing image with the bugs of the given era.
    pub fn mount(dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<JournalFs> {
        Self::mount_with_bugs(dev, JournalBugs::for_era(era))
    }

    /// Mounts an existing image with an explicit bug set. JournalFs recovery
    /// is just reading the last committed tree (journal replay happens
    /// implicitly because every commit writes a complete consistent image).
    pub fn mount_with_bugs(dev: Box<dyn BlockDevice>, bugs: JournalBugs) -> FsResult<JournalFs> {
        let sb = SuperBlock::read_from(dev.as_ref(), JOURNALFS_MAGIC)?;
        let committed = MemTree::decode(&read_blob(dev.as_ref(), sb.tree)?)
            .map_err(|e| FsError::Unmountable(format!("corrupt file system image: {e}")))?;
        Ok(JournalFs {
            dev,
            sb,
            bugs,
            working: committed.clone(),
            committed,
        })
    }

    /// The active bug configuration.
    pub fn bugs(&self) -> &JournalBugs {
        &self.bugs
    }

    /// Commits `tree` as the new on-disk state.
    fn commit_tree(&mut self, tree: &MemTree) -> FsResult<()> {
        let bytes = tree.encode();
        self.sb.tree = write_blob(self.dev.as_mut(), &mut self.sb, &bytes, IoFlags::META)?;
        self.sb.log = BlobRef::EMPTY;
        self.sb.generation += 1;
        self.sb.dirty = true;
        self.sb.write_to(self.dev.as_mut())?;
        self.committed = tree.clone();
        Ok(())
    }

    fn commit_working(&mut self) -> FsResult<()> {
        let tree = self.working.clone();
        self.commit_tree(&tree)
    }

    /// `fdatasync` commits the working tree, except that the buggy path
    /// drops allocation beyond EOF for the target file.
    fn fdatasync_commit(&mut self, path: &str) -> FsResult<()> {
        let mut tree = self.working.clone();
        if self.bugs.fdatasync_skips_falloc_beyond_eof {
            if let Ok(ino) = tree.resolve(path) {
                if let Some(inode) = tree.inode_mut(ino) {
                    let covered = (inode.data.len() as u64).div_ceil(4096) * 4096;
                    if inode.allocated > covered {
                        inode.allocated = covered;
                    }
                }
            }
        }
        self.commit_tree(&tree)
    }
}

impl FileSystem for JournalFs {
    fn fs_name(&self) -> &'static str {
        "journalfs"
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        self.working.create_file(path).map(|_| ())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.working.mkdir(path).map(|_| ())
    }

    fn mkfifo(&mut self, path: &str) -> FsResult<()> {
        self.working.mkfifo(path).map(|_| ())
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> FsResult<()> {
        self.working.symlink(target, linkpath).map(|_| ())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.working.link(existing, new).map(|_| ())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.working.unlink(path)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.working.rmdir(path)
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.working.rename(from, to)
    }

    fn write(&mut self, path: &str, offset: u64, data: &[u8], mode: WriteMode) -> FsResult<()> {
        self.working.write(path, offset, data)?;
        if mode == WriteMode::Direct {
            // Direct IO reaches the device immediately: the data (and, on a
            // correct kernel, the on-disk size) become durable without an
            // explicit persistence call.
            let mut durable = self.committed.clone();
            if !durable.exists(path) {
                // The file itself was never committed; a direct write cannot
                // resurrect it, so there is nothing durable to update.
                return Ok(());
            }
            durable.write(path, offset, data)?;
            if self.bugs.direct_write_skips_disksize {
                if let (Ok(ino), Ok(committed_meta)) =
                    (durable.resolve(path), self.committed.metadata(path))
                {
                    if let Some(inode) = durable.inode_mut(ino) {
                        // Data and allocation reach the disk, but the size
                        // update is lost.
                        inode.data.truncate(committed_meta.size as usize);
                    }
                }
            }
            self.commit_tree(&durable)?;
        }
        Ok(())
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        self.working.truncate(path, size)
    }

    fn fallocate(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) -> FsResult<()> {
        self.working.fallocate(path, mode, offset, len)
    }

    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        self.working.setxattr(path, name, value)
    }

    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        self.working.removexattr(path, name)
    }

    fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        self.working.getxattr(path, name)
    }

    fn read(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.working.read(path, offset, len)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.working.readdir(path)
    }

    fn metadata(&self, path: &str) -> FsResult<Metadata> {
        self.working.metadata(path)
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        self.working.readlink(path)
    }

    fn fsync(&mut self, _path: &str) -> FsResult<()> {
        // ext4 fsync commits the running transaction, persisting everything
        // that happened before it.
        self.commit_working()
    }

    fn fdatasync(&mut self, path: &str) -> FsResult<()> {
        self.fdatasync_commit(path)
    }

    fn sync(&mut self) -> FsResult<()> {
        self.commit_working()
    }

    fn unmount(mut self: Box<Self>) -> FsResult<Box<dyn BlockDevice>> {
        self.commit_working()?;
        self.sb.dirty = false;
        self.sb.write_to(self.dev.as_mut())?;
        Ok(self.dev)
    }

    fn guarantees(&self) -> GuaranteeProfile {
        GuaranteeProfile::linux_default()
    }
}

/// Incremental recovery session for JournalFs (see
/// [`b3_vfs::recover::RecoverDelta`]).
///
/// A JournalFs mount is a single decode of the committed tree — every
/// commit writes a complete consistent image, so recovery has no replay
/// phase. The session memoizes that decode in a [`CommittedTreeCache`] and
/// skips it entirely when the state delta proves the blob is untouched,
/// which between adjacent crash states is the common case (the blob only
/// moves on a commit).
struct JournalRecoverySession {
    bugs: JournalBugs,
    cache: CommittedTreeCache,
    /// Base image whose committed tree is pinned in the cache.
    primed: Option<b3_block::DiskImage>,
}

impl RecoverDelta for JournalRecoverySession {
    fn prime(&mut self, _spec: &dyn FsSpec, base: &b3_block::DiskImage) {
        // State from the previous run proves nothing about this one.
        self.cache.start_run();
        if self.primed.as_ref().is_some_and(|p| p.ptr_eq(base)) {
            return;
        }
        // New base: decode its committed tree once and pin it, so the first
        // crash state of every run replayed onto this base (whose delta is
        // relative to the base) can hit the cache too. All errors are
        // swallowed — priming is an optimization, and `recover` reports
        // mount failures of a broken base exactly as `mount` would.
        self.primed = None;
        let dev = b3_block::CowSnapshotDevice::new(base.clone());
        let Ok(sb) = SuperBlock::read_from(&dev, JOURNALFS_MAGIC) else {
            return;
        };
        let Ok(tree_bytes) = read_blob(&dev, sb.tree) else {
            return;
        };
        if tree_bytes.is_empty() {
            return;
        }
        let Ok(tree) = MemTree::decode(&tree_bytes) else {
            return;
        };
        self.cache.pin(&sb, tree);
        self.primed = Some(base.clone());
    }

    fn recover(
        &mut self,
        _spec: &dyn FsSpec,
        dev: Box<dyn BlockDevice>,
        delta: Option<&StateDelta>,
    ) -> FsResult<Box<dyn FileSystem>> {
        let sb = SuperBlock::read_from(dev.as_ref(), JOURNALFS_MAGIC)?;
        let committed = match self.cache.lookup(&sb, delta) {
            Some(tree) => tree.clone(),
            None => {
                // Identical decode (and error) path to `mount_with_bugs` —
                // unless a byte compare proves the cached decode still
                // matches this state's blob.
                let tree_bytes = read_blob(dev.as_ref(), sb.tree)?;
                match self.cache.verify(&sb, &tree_bytes) {
                    Some(tree) => tree.clone(),
                    None => {
                        let tree = MemTree::decode(&tree_bytes).map_err(|e| {
                            FsError::Unmountable(format!("corrupt file system image: {e}"))
                        })?;
                        self.cache.store(&sb, tree_bytes, tree.clone());
                        tree
                    }
                }
            }
        };
        Ok(Box::new(JournalFs {
            dev,
            sb,
            bugs: self.bugs,
            working: committed.clone(),
            committed,
        }))
    }

    fn is_incremental(&self) -> bool {
        true
    }
}

/// Factory for JournalFs instances.
#[derive(Debug, Clone, Copy)]
pub struct JournalFsSpec {
    bugs: JournalBugs,
    name: &'static str,
}

impl JournalFsSpec {
    /// Spec with the bugs of a kernel era.
    pub fn new(era: KernelEra) -> Self {
        JournalFsSpec {
            bugs: JournalBugs::for_era(era),
            name: "journalfs",
        }
    }

    /// Spec with an explicit bug set.
    pub fn with_bugs(bugs: JournalBugs) -> Self {
        JournalFsSpec {
            bugs,
            name: "journalfs",
        }
    }

    /// Fully patched spec.
    pub fn patched() -> Self {
        JournalFsSpec {
            bugs: JournalBugs::none(),
            name: "journalfs",
        }
    }

    /// The paper also tested xfs with seq-1 and seq-2 workloads and found no
    /// new bugs. We model xfs as a patched JournalFs under a different name:
    /// for black-box crash testing the observable behaviour of a correct
    /// journaling file system is what matters.
    pub fn xfs_stand_in() -> Self {
        JournalFsSpec {
            bugs: JournalBugs::none(),
            name: "xfs-sim",
        }
    }
}

impl FsSpec for JournalFsSpec {
    fn name(&self) -> &'static str {
        self.name
    }

    fn mkfs(&self, mut device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        JournalFs::format(&mut device)?;
        Ok(Box::new(JournalFs::mount_with_bugs(device, self.bugs)?))
    }

    fn mount(&self, device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        Ok(Box::new(JournalFs::mount_with_bugs(device, self.bugs)?))
    }

    fn recovery_session(&self) -> Box<dyn RecoverDelta + Send> {
        Box::new(JournalRecoverySession {
            bugs: self.bugs,
            cache: CommittedTreeCache::new(),
            primed: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_block::RamDisk;

    fn fresh(bugs: JournalBugs) -> JournalFs {
        let mut dev: Box<dyn BlockDevice> = Box::new(RamDisk::new(4096));
        JournalFs::format(&mut dev).unwrap();
        JournalFs::mount_with_bugs(dev, bugs).unwrap()
    }

    fn crash_and_remount(fs: JournalFs, bugs: JournalBugs) -> JournalFs {
        JournalFs::mount_with_bugs(fs.dev, bugs).unwrap()
    }

    #[test]
    fn recovery_session_matches_remount_and_caches_the_committed_tree() {
        use b3_vfs::snapshot::LogicalSnapshot;
        fn crashed_device() -> Box<dyn BlockDevice> {
            let mut fs = fresh(JournalBugs::none());
            fs.mkdir("A").unwrap();
            fs.create("A/foo").unwrap();
            fs.write("A/foo", 0, b"payload", WriteMode::Buffered)
                .unwrap();
            fs.fsync("A/foo").unwrap();
            fs.create("A/volatile").unwrap();
            fs.dev // crash: no clean unmount
        }
        let spec = JournalFsSpec::patched();
        let baseline = spec.mount(crashed_device()).unwrap();
        let expected = LogicalSnapshot::capture(baseline.as_ref()).unwrap();

        let mut session = spec.recovery_session();
        assert!(session.is_incremental());
        let first = session.recover(&spec, crashed_device(), None).unwrap();
        assert_eq!(LogicalSnapshot::capture(first.as_ref()).unwrap(), expected);
        let empty = StateDelta::from_blocks(Vec::new());
        let second = session
            .recover(&spec, crashed_device(), Some(&empty))
            .unwrap();
        assert_eq!(LogicalSnapshot::capture(second.as_ref()).unwrap(), expected);
    }

    #[test]
    fn fsync_commits_everything() {
        let mut fs = fresh(JournalBugs::none());
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, &[7u8; 3000], WriteMode::Buffered)
            .unwrap();
        fs.fsync("A/foo").unwrap();
        fs.create("A/volatile").unwrap();
        let fs = crash_and_remount(fs, JournalBugs::none());
        assert_eq!(fs.metadata("A/foo").unwrap().size, 3000);
        assert!(!fs.exists("A/volatile"));
    }

    #[test]
    fn fdatasync_falloc_bug_loses_blocks() {
        // Known workload 2 on ext4.
        let run = |bugs: JournalBugs| -> u64 {
            let mut fs = fresh(bugs);
            fs.create("foo").unwrap();
            fs.write("foo", 0, &[1u8; 8192], WriteMode::Buffered)
                .unwrap();
            fs.fsync("foo").unwrap();
            fs.fallocate("foo", FallocMode::KeepSize, 8192, 8192)
                .unwrap();
            fs.fdatasync("foo").unwrap();
            let fs = crash_and_remount(fs, bugs);
            fs.metadata("foo").unwrap().blocks
        };
        assert_eq!(run(JournalBugs::none()), 32);
        assert_eq!(
            run(JournalBugs {
                fdatasync_skips_falloc_beyond_eof: true,
                ..JournalBugs::none()
            }),
            16
        );
    }

    #[test]
    fn direct_write_disksize_bug_recovers_size_zero() {
        // Known workload 4: buffered write at 16K (never persisted), then a
        // direct write of the first 4K.
        let run = |bugs: JournalBugs| -> u64 {
            let mut fs = fresh(bugs);
            fs.create("foo").unwrap();
            fs.sync().unwrap();
            fs.write("foo", 16 * 1024, &[2u8; 4096], WriteMode::Buffered)
                .unwrap();
            fs.write("foo", 0, &[3u8; 4096], WriteMode::Direct).unwrap();
            let fs = crash_and_remount(fs, bugs);
            fs.metadata("foo").unwrap().size
        };
        assert_eq!(run(JournalBugs::none()), 4096);
        assert_eq!(
            run(JournalBugs {
                direct_write_skips_disksize: true,
                ..JournalBugs::none()
            }),
            0
        );
    }

    #[test]
    fn direct_write_to_uncommitted_file_stays_volatile() {
        let mut fs = fresh(JournalBugs::none());
        fs.create("foo").unwrap();
        fs.write("foo", 0, &[1u8; 100], WriteMode::Direct).unwrap();
        let fs = crash_and_remount(fs, JournalBugs::none());
        assert!(!fs.exists("foo"));
    }

    #[test]
    fn era_table_matches_paper() {
        assert_eq!(
            JournalBugs::for_era(KernelEra::Patched),
            JournalBugs::none()
        );
        assert_eq!(JournalBugs::for_era(KernelEra::V4_16), JournalBugs::none());
        let old = JournalBugs::for_era(KernelEra::V4_15);
        assert!(old.fdatasync_skips_falloc_beyond_eof);
        assert!(old.direct_write_skips_disksize);
    }

    #[test]
    fn xfs_stand_in_is_patched() {
        let spec = JournalFsSpec::xfs_stand_in();
        assert_eq!(spec.name(), "xfs-sim");
        let fs = spec.mkfs(Box::new(RamDisk::new(1024))).unwrap();
        assert_eq!(fs.fs_name(), "journalfs");
    }
}
