//! The streaming workload generator: a pure odometer machine over the
//! phase-1/2/3 combination space, finishing each candidate with phase 4 and
//! yielding valid workloads one at a time. No phase output is ever
//! materialized: generation state is a few hundred bytes regardless of how
//! many millions of workloads a bound expands to.
//!
//! The candidate space is totally ordered (skeletons outermost, then
//! phase-2 argument choices, then phase-3 persistence choices, rightmost
//! position fastest), which makes it *addressable*: [`WorkloadGenerator::skip_to`]
//! positions the generator at any global candidate index in
//! O(|skeletons| + seq_len), and [`Bounds::shard`] splits the space into
//! deterministic, independently enumerable chunks whose concatenation is
//! exactly the unsharded enumeration — including workload names.

use b3_vfs::workload::{Op, OpKind, Workload};

use crate::bounds::Bounds;
use crate::phases::{persistence_options, phase2_candidates, phase4_dependencies};

/// Counters describing one generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenerationStats {
    /// Skeletons produced by phase 1 (for a shard: the whole space's count).
    pub skeletons: u64,
    /// Candidate workloads examined (phase 2 × phase 3 combinations).
    pub candidates: u64,
    /// Candidates discarded by phase 4 as impossible to execute.
    pub discarded: u64,
    /// Valid workloads emitted.
    pub emitted: u64,
}

/// One deterministic chunk of a bounded workload space.
///
/// Produced by [`Bounds::shard`] / [`Bounds::shards`]; consumed by
/// [`WorkloadGenerator::for_shard`]. Shards partition the *candidate* space
/// (phase 1 × 2 × 3, before phase-4 filtering), so every shard can be
/// enumerated without touching any other shard's state, and
/// `shards(n)` concatenated in order reproduces the unsharded stream
/// exactly, workload names included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadShard {
    /// Shard number, `0..of`.
    pub index: usize,
    /// Total number of shards in this split.
    pub of: usize,
    /// First global candidate index covered (inclusive).
    pub start: u64,
    /// One past the last global candidate index covered.
    pub end: u64,
}

impl WorkloadShard {
    /// Number of candidates this shard covers.
    pub fn candidates(&self) -> u64 {
        self.end - self.start
    }

    /// True when the shard covers no candidates at all.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

impl Bounds {
    /// Splits the bounded candidate space into `of` near-equal shards and
    /// returns shard `index` (zero-based).
    ///
    /// # Panics
    /// Panics when `index >= of` or `of == 0`.
    pub fn shard(&self, index: usize, of: usize) -> WorkloadShard {
        assert!(of > 0, "cannot split a space into zero shards");
        assert!(index < of, "shard index {index} out of range 0..{of}");
        let total = WorkloadGenerator::estimate_candidates(self) as u128;
        let start = (total * index as u128 / of as u128) as u64;
        let end = (total * (index as u128 + 1) / of as u128) as u64;
        WorkloadShard {
            index,
            of,
            start,
            end,
        }
    }

    /// All `of` shards of this space, in order.
    pub fn shards(&self, of: usize) -> Vec<WorkloadShard> {
        (0..of).map(|i| self.shard(i, of)).collect()
    }
}

/// Per-operation-kind cached facts used by the odometer arithmetic.
#[derive(Debug, Clone)]
struct KindInfo {
    /// Phase-2 argument candidates for this kind.
    candidates: Vec<Op>,
    /// Phase-3 option count when the operation is not last.
    persist_non_last: usize,
    /// Phase-3 option count when the operation is last.
    persist_last: usize,
}

/// A lazy, exhaustive, addressable workload generator for one [`Bounds`]
/// configuration (optionally restricted to a candidate range — a shard).
pub struct WorkloadGenerator {
    bounds: Bounds,
    /// Cached per-kind candidates and persistence counts, aligned with
    /// `bounds.ops`.
    kinds: Vec<KindInfo>,
    /// Phase-1 odometer: one digit per sequence position, radix
    /// `bounds.ops.len()`, rightmost fastest. `None` once exhausted.
    skeleton: Option<Vec<usize>>,
    /// Phase-2 odometer: argument choice per position.
    core_odometer: Vec<usize>,
    /// The concrete core operations selected by `core_odometer`.
    core_ops: Vec<Op>,
    /// Phase-3 options per position for the current core.
    persist_options: Vec<Vec<Option<Op>>>,
    /// Phase-3 odometer: persistence choice per position.
    persist_odometer: Vec<usize>,
    /// Global candidate index of the next candidate to examine.
    cursor: u64,
    /// One past the last candidate this generator may examine.
    end: u64,
    stats: GenerationStats,
}

impl WorkloadGenerator {
    /// Creates a generator for the whole space of the given bounds.
    pub fn new(bounds: Bounds) -> Self {
        Self::with_range(bounds, 0, u64::MAX)
    }

    /// Creates a generator for one shard of the bounded space.
    pub fn for_shard(bounds: Bounds, shard: &WorkloadShard) -> Self {
        Self::with_range(bounds, shard.start, shard.end)
    }

    /// Creates a generator restricted to global candidate indices
    /// `start..end`.
    pub fn with_range(bounds: Bounds, start: u64, end: u64) -> Self {
        let kinds: Vec<KindInfo> = bounds
            .ops
            .iter()
            .map(|kind| KindInfo {
                candidates: phase2_candidates(*kind, &bounds),
                persist_non_last: persistence_option_count(*kind, false, &bounds) as usize,
                persist_last: persistence_option_count(*kind, true, &bounds) as usize,
            })
            .collect();
        let num_skeletons = (bounds.ops.len() as u64).saturating_pow(bounds.seq_len as u32);
        let mut generator = WorkloadGenerator {
            skeleton: Some(vec![0; bounds.seq_len]),
            core_odometer: Vec::new(),
            core_ops: Vec::new(),
            persist_options: Vec::new(),
            persist_odometer: Vec::new(),
            cursor: 0,
            end,
            stats: GenerationStats {
                skeletons: num_skeletons,
                ..GenerationStats::default()
            },
            kinds,
            bounds,
        };
        if generator.bounds.ops.is_empty() && generator.bounds.seq_len > 0 {
            generator.skeleton = None;
        } else {
            generator.seek(start);
        }
        generator
    }

    /// Statistics so far (complete once the iterator is exhausted). For a
    /// sharded generator the candidate/emitted/discarded counters cover only
    /// this shard.
    pub fn stats(&self) -> GenerationStats {
        self.stats
    }

    /// The bounds this generator explores.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// The global candidate index of the next candidate to be examined.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Repositions the generator at the given global candidate index without
    /// enumerating the candidates before it. Runs in
    /// O(|skeletons| + seq_len); the skipped candidates do not appear in
    /// [`GenerationStats`].
    pub fn skip_to(&mut self, index: u64) {
        self.seek(index);
    }

    /// The exact number of candidate workloads the bounds expand to
    /// (before phase-4 filtering), computed analytically without walking the
    /// space.
    pub fn estimate_candidates(bounds: &Bounds) -> u64 {
        if bounds.ops.is_empty() && bounds.seq_len > 0 {
            return 0;
        }
        let per_kind: Vec<(u64, u64, u64)> = bounds
            .ops
            .iter()
            .map(|kind| {
                (
                    phase2_candidates(*kind, bounds).len() as u64,
                    persistence_option_count(*kind, false, bounds),
                    persistence_option_count(*kind, true, bounds),
                )
            })
            .collect();
        let mut total = 0u64;
        let mut skeleton = vec![0usize; bounds.seq_len];
        loop {
            let mut product = 1u64;
            for (position, &kind_idx) in skeleton.iter().enumerate() {
                let is_last = position + 1 == bounds.seq_len;
                let (args, non_last, last) = per_kind[kind_idx];
                let persistence = if is_last { last } else { non_last };
                product = product.saturating_mul(args).saturating_mul(persistence);
            }
            total = total.saturating_add(product);
            if !advance_digits(&mut skeleton, |_| bounds.ops.len()) {
                break;
            }
        }
        total
    }

    /// Candidates a skeleton expands to: the product of per-position
    /// (argument choices × persistence choices).
    fn skeleton_candidates(&self, skeleton: &[usize]) -> u64 {
        let mut product = 1u64;
        for (position, &kind_idx) in skeleton.iter().enumerate() {
            let info = &self.kinds[kind_idx];
            let persistence = if position + 1 == skeleton.len() {
                info.persist_last
            } else {
                info.persist_non_last
            };
            product = product
                .saturating_mul(info.candidates.len() as u64)
                .saturating_mul(persistence as u64);
        }
        product
    }

    /// Positions the odometers at global candidate index `index`, skipping
    /// whole skeletons analytically.
    fn seek(&mut self, index: u64) {
        if self.bounds.ops.is_empty() && self.bounds.seq_len > 0 {
            self.skeleton = None;
            self.cursor = index;
            return;
        }
        let mut skeleton = vec![0usize; self.bounds.seq_len];
        let mut remaining = index;
        loop {
            let total = self.skeleton_candidates(&skeleton);
            if remaining < total {
                break;
            }
            remaining -= total;
            if !advance_digits(&mut skeleton, |_| self.bounds.ops.len()) {
                self.skeleton = None;
                self.cursor = index;
                return;
            }
        }

        // Decompose the remainder: argument choices are the outer odometer,
        // persistence choices the inner one, rightmost position fastest.
        let per_core: u64 = skeleton
            .iter()
            .enumerate()
            .map(|(position, &kind_idx)| {
                let info = &self.kinds[kind_idx];
                if position + 1 == skeleton.len() {
                    info.persist_last as u64
                } else {
                    info.persist_non_last as u64
                }
            })
            .product();
        let core_index = remaining / per_core.max(1);
        let persist_index = remaining % per_core.max(1);

        let mut core_odometer = vec![0usize; skeleton.len()];
        let mut idx = core_index;
        for position in (0..skeleton.len()).rev() {
            let radix = self.kinds[skeleton[position]].candidates.len() as u64;
            core_odometer[position] = (idx % radix) as usize;
            idx /= radix;
        }

        self.skeleton = Some(skeleton);
        self.core_odometer = core_odometer;
        self.rebuild_core();

        let mut persist_odometer = vec![0usize; self.persist_options.len()];
        let mut idx = persist_index;
        for position in (0..persist_odometer.len()).rev() {
            let radix = self.persist_options[position].len() as u64;
            persist_odometer[position] = (idx % radix) as usize;
            idx /= radix;
        }
        self.persist_odometer = persist_odometer;
        self.cursor = index;
    }

    /// Rebuilds `core_ops` and `persist_options` from the skeleton and core
    /// odometer.
    fn rebuild_core(&mut self) {
        let Some(skeleton) = &self.skeleton else {
            return;
        };
        let len = skeleton.len();
        self.core_ops = skeleton
            .iter()
            .zip(&self.core_odometer)
            .map(|(&kind_idx, &choice)| self.kinds[kind_idx].candidates[choice].clone())
            .collect();
        self.persist_options = self
            .core_ops
            .iter()
            .enumerate()
            .map(|(position, op)| persistence_options(op, position + 1 == len, &self.bounds))
            .collect();
    }

    /// Assembles the candidate op sequence at the current odometer position.
    fn assemble(&self) -> Vec<Op> {
        let mut ops = Vec::with_capacity(self.core_ops.len() * 2);
        for (position, op) in self.core_ops.iter().enumerate() {
            ops.push(op.clone());
            if let Some(p) = &self.persist_options[position][self.persist_odometer[position]] {
                ops.push(p.clone());
            }
        }
        ops
    }

    /// Advances to the next candidate: persistence odometer first, then
    /// arguments, then the skeleton.
    fn advance(&mut self) {
        if self.skeleton.is_none() {
            return;
        }
        if advance_digits(&mut self.persist_odometer, |i| {
            self.persist_options[i].len()
        }) {
            return;
        }
        let kinds = &self.kinds;
        let skeleton = self.skeleton.as_ref().expect("checked above");
        if advance_digits(&mut self.core_odometer, |i| {
            kinds[skeleton[i]].candidates.len()
        }) {
            self.rebuild_core();
            self.persist_odometer = vec![0; self.persist_options.len()];
            return;
        }
        self.advance_skeleton();
    }

    /// Moves to the next skeleton with a non-empty candidate product.
    fn advance_skeleton(&mut self) {
        loop {
            let Some(skeleton) = &mut self.skeleton else {
                return;
            };
            if !advance_digits(skeleton, |_| self.bounds.ops.len()) {
                self.skeleton = None;
                return;
            }
            let ready = skeleton
                .iter()
                .all(|&kind_idx| !self.kinds[kind_idx].candidates.is_empty());
            if ready {
                self.core_odometer = vec![0; self.bounds.seq_len];
                self.rebuild_core();
                self.persist_odometer = vec![0; self.persist_options.len()];
                return;
            }
        }
    }
}

/// The phase-3 alternatives a single operation admits, without building the
/// option list. Mirrors [`phases::persistence_options`]; the generator's
/// sharding arithmetic and [`WorkloadGenerator::estimate_candidates`] both
/// rely on the two staying in lock-step, which
/// `tests::persistence_counts_match_options` pins down.
pub(crate) fn persistence_option_count(kind: OpKind, is_last: bool, bounds: &Bounds) -> u64 {
    let choices = &bounds.persistence;
    let mut count = 0u64;
    if choices.fsync {
        count += 1;
    }
    if choices.fdatasync && is_last && kind.is_data_op() {
        count += 1;
    }
    if choices.sync {
        count += 1;
    }
    if !is_last && choices.allow_none {
        count += 1;
    }
    count.max(1)
}

/// Increments a mixed-radix odometer (rightmost digit fastest); returns
/// false when the odometer wrapped around (i.e. it was at its last value).
fn advance_digits(digits: &mut [usize], radix: impl Fn(usize) -> usize) -> bool {
    for position in (0..digits.len()).rev() {
        digits[position] += 1;
        if digits[position] < radix(position) {
            return true;
        }
        digits[position] = 0;
    }
    false
}

impl Iterator for WorkloadGenerator {
    type Item = Workload;

    fn next(&mut self) -> Option<Workload> {
        loop {
            if self.skeleton.is_none() || self.cursor >= self.end {
                return None;
            }
            // A skeleton containing a kind with no argument candidates has an
            // empty product; seek/advance never land inside one except at
            // startup, where the initial all-zeros skeleton may be empty.
            if self.core_ops.is_empty() && self.bounds.seq_len > 0 {
                self.advance_skeleton();
                continue;
            }
            let ops = self.assemble();
            self.cursor += 1;
            self.stats.candidates += 1;
            let name = format!("{}-{:07}", self.bounds.name_prefix, self.cursor);
            self.advance();
            match phase4_dependencies(&name, ops, &self.bounds) {
                Some(workload) => {
                    self.stats.emitted += 1;
                    return Some(workload);
                }
                None => self.stats.discarded += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{phase1_skeletons, phase2_parameters, phase3_persistence};

    #[test]
    fn tiny_bounds_generate_quickly_and_deterministically() {
        let first: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        let second: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        assert_eq!(first, second, "generation must be deterministic");
        assert!(!first.is_empty());
        for workload in &first {
            assert!(workload.ends_with_persistence_point());
            assert_eq!(workload.sequence_length(), 1);
        }
    }

    #[test]
    fn stats_account_for_every_candidate() {
        let mut generator = WorkloadGenerator::new(Bounds::tiny());
        let emitted = generator.by_ref().count() as u64;
        let stats = generator.stats();
        assert_eq!(stats.emitted, emitted);
        assert_eq!(stats.candidates, stats.emitted + stats.discarded);
        assert!(stats.skeletons > 0);
    }

    #[test]
    fn estimate_is_an_upper_bound_on_emitted() {
        let bounds = Bounds::tiny();
        let estimate = WorkloadGenerator::estimate_candidates(&bounds);
        let mut generator = WorkloadGenerator::new(bounds);
        let emitted = generator.by_ref().count() as u64;
        let candidates = generator.stats().candidates;
        assert_eq!(estimate, candidates);
        assert!(estimate >= emitted);
    }

    #[test]
    fn seq1_estimate_matches_exhaustive_walk() {
        let bounds = Bounds::paper_seq1();
        let estimate = WorkloadGenerator::estimate_candidates(&bounds);
        let mut generator = WorkloadGenerator::new(bounds);
        let _ = generator.by_ref().count();
        assert_eq!(generator.stats().candidates, estimate);
    }

    /// The streaming odometer must enumerate candidates in exactly the
    /// order of the eager phase pipeline (phase 1 → 2 → 3 in sequence).
    #[test]
    fn streaming_order_matches_eager_phases() {
        for bounds in [Bounds::tiny(), Bounds::paper_seq1()] {
            let mut eager: Vec<Workload> = Vec::new();
            let mut candidate = 0u64;
            for skeleton in phase1_skeletons(&bounds) {
                for core in phase2_parameters(&skeleton, &bounds) {
                    for ops in phase3_persistence(&core, &bounds) {
                        candidate += 1;
                        let name = format!("{}-{:07}", bounds.name_prefix, candidate);
                        if let Some(w) = phase4_dependencies(&name, ops, &bounds) {
                            eager.push(w);
                        }
                    }
                }
            }
            let streamed: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
            assert_eq!(streamed, eager);
        }
    }

    #[test]
    fn skip_to_agrees_with_plain_enumeration() {
        let bounds = Bounds::tiny();
        let all: Vec<Workload> = WorkloadGenerator::new(bounds.clone()).collect();
        let total = WorkloadGenerator::estimate_candidates(&bounds);
        for start in [0u64, 1, total / 2, total.saturating_sub(1), total] {
            let mut skipped = WorkloadGenerator::new(bounds.clone());
            skipped.skip_to(start);
            let tail: Vec<Workload> = skipped.collect();
            let expected: Vec<Workload> = WorkloadGenerator::new(bounds.clone())
                .skip_while(|w| {
                    let index: u64 = w
                        .name
                        .rsplit('-')
                        .next()
                        .unwrap()
                        .parse()
                        .expect("workload names end in the candidate index");
                    index <= start
                })
                .collect();
            assert_eq!(tail, expected, "skip_to({start})");
            assert!(tail.len() <= all.len());
        }
    }

    #[test]
    fn concatenated_shards_equal_unsharded_enumeration() {
        for num_shards in [1usize, 2, 3, 7] {
            let bounds = Bounds::tiny();
            let mut sharded: Vec<Workload> = Vec::new();
            for shard in bounds.shards(num_shards) {
                sharded.extend(WorkloadGenerator::for_shard(bounds.clone(), &shard));
            }
            let unsharded: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
            assert_eq!(sharded, unsharded, "{num_shards} shards");
        }
    }

    #[test]
    fn shards_partition_the_candidate_space() {
        let bounds = Bounds::paper_seq2();
        let total = WorkloadGenerator::estimate_candidates(&bounds);
        let shards = bounds.shards(16);
        assert_eq!(shards[0].start, 0);
        assert_eq!(shards.last().unwrap().end, total);
        for pair in shards.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let covered: u64 = shards.iter().map(WorkloadShard::candidates).sum();
        assert_eq!(covered, total);
    }

    #[test]
    fn empty_op_set_is_exhausted_and_skip_to_does_not_panic() {
        let bounds = Bounds::tiny().with_ops(Vec::new());
        assert_eq!(WorkloadGenerator::estimate_candidates(&bounds), 0);
        let mut generator = WorkloadGenerator::new(bounds);
        assert!(generator.next().is_none());
        generator.skip_to(5);
        assert!(generator.next().is_none());
    }

    #[test]
    fn persistence_counts_match_options() {
        // The analytic count must stay in lock-step with the option builder
        // for every kind in every preset, else sharding arithmetic drifts.
        use crate::bounds::SequencePreset;
        for preset in SequencePreset::ALL {
            let bounds = preset.bounds();
            for kind in &bounds.ops {
                for candidate in phase2_candidates(*kind, &bounds) {
                    for is_last in [false, true] {
                        let options = persistence_options(&candidate, is_last, &bounds);
                        let count = persistence_option_count(*kind, is_last, &bounds);
                        assert_eq!(options.len() as u64, count, "{kind:?} is_last={is_last}");
                    }
                }
            }
        }
    }
}
