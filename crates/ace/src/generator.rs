//! The lazy workload generator: walks the phase-1/2/3 combination space with
//! an odometer and finishes each candidate with phase 4, yielding valid
//! workloads one at a time. Generation state is a few kilobytes regardless
//! of how many millions of workloads a bound expands to.

use std::collections::VecDeque;

use b3_vfs::workload::{Op, OpKind, Workload};

use crate::bounds::Bounds;
use crate::phases::{phase1_skeletons, phase2_candidates, phase3_persistence, phase4_dependencies};

/// Counters describing one generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenerationStats {
    /// Skeletons produced by phase 1.
    pub skeletons: u64,
    /// Candidate workloads examined (phase 2 × phase 3 combinations).
    pub candidates: u64,
    /// Candidates discarded by phase 4 as impossible to execute.
    pub discarded: u64,
    /// Valid workloads emitted.
    pub emitted: u64,
}

/// A lazy, exhaustive workload generator for one [`Bounds`] configuration.
pub struct WorkloadGenerator {
    bounds: Bounds,
    skeletons: Vec<Vec<OpKind>>,
    skeleton_idx: usize,
    /// Per-position argument candidates for the current skeleton.
    candidates: Vec<Vec<Op>>,
    /// Odometer over `candidates`; `None` once the current skeleton is done.
    odometer: Option<Vec<usize>>,
    /// Phase-3/4 output waiting to be yielded.
    pending: VecDeque<Workload>,
    stats: GenerationStats,
}

impl WorkloadGenerator {
    /// Creates a generator for the given bounds.
    pub fn new(bounds: Bounds) -> Self {
        let skeletons = phase1_skeletons(&bounds);
        let stats = GenerationStats {
            skeletons: skeletons.len() as u64,
            ..GenerationStats::default()
        };
        let mut generator = WorkloadGenerator {
            bounds,
            skeletons,
            skeleton_idx: 0,
            candidates: Vec::new(),
            odometer: None,
            pending: VecDeque::new(),
            stats,
        };
        generator.load_skeleton();
        generator
    }

    /// Statistics so far (complete once the iterator is exhausted).
    pub fn stats(&self) -> GenerationStats {
        self.stats
    }

    /// The bounds this generator explores.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// An upper-bound estimate of how many candidate workloads the bounds
    /// expand to, computed analytically (before phase-4 filtering). Useful
    /// for sizing runs without walking the whole space.
    pub fn estimate_candidates(bounds: &Bounds) -> u64 {
        let per_kind: Vec<(OpKind, u64, u64)> = bounds
            .ops
            .iter()
            .map(|kind| {
                let candidates = phase2_candidates(*kind, bounds);
                let persistence_non_last = persistence_option_count(*kind, false, bounds);
                (*kind, candidates.len() as u64, persistence_non_last)
            })
            .collect();
        let mut total = 0u64;
        let skeletons = phase1_skeletons(bounds);
        for skeleton in &skeletons {
            let mut product = 1u64;
            for (position, kind) in skeleton.iter().enumerate() {
                let is_last = position + 1 == skeleton.len();
                let (_, args, _) = per_kind
                    .iter()
                    .find(|(k, _, _)| k == kind)
                    .copied()
                    .unwrap_or((*kind, 0, 1));
                let persistence = persistence_option_count(*kind, is_last, bounds);
                product = product.saturating_mul(args).saturating_mul(persistence);
            }
            total = total.saturating_add(product);
        }
        total
    }

    fn load_skeleton(&mut self) {
        while self.skeleton_idx < self.skeletons.len() {
            let skeleton = &self.skeletons[self.skeleton_idx];
            let candidates: Vec<Vec<Op>> = skeleton
                .iter()
                .map(|kind| phase2_candidates(*kind, &self.bounds))
                .collect();
            if candidates.iter().all(|c| !c.is_empty()) {
                self.odometer = Some(vec![0; candidates.len()]);
                self.candidates = candidates;
                return;
            }
            self.skeleton_idx += 1;
        }
        self.odometer = None;
        self.candidates.clear();
    }

    fn advance_odometer(&mut self) {
        let Some(odometer) = &mut self.odometer else {
            return;
        };
        for position in (0..odometer.len()).rev() {
            odometer[position] += 1;
            if odometer[position] < self.candidates[position].len() {
                return;
            }
            odometer[position] = 0;
        }
        // Wrapped around: this skeleton is exhausted.
        self.skeleton_idx += 1;
        self.load_skeleton();
    }

    /// Expands the current odometer position through phases 3 and 4.
    fn expand_current(&mut self) {
        let Some(odometer) = &self.odometer else {
            return;
        };
        let core: Vec<Op> = odometer
            .iter()
            .zip(&self.candidates)
            .map(|(&index, options)| options[index].clone())
            .collect();
        let expansions = phase3_persistence(&core, &self.bounds);
        for ops in expansions {
            self.stats.candidates += 1;
            let name = format!("{}-{:07}", self.bounds.name_prefix, self.stats.candidates);
            match phase4_dependencies(&name, ops, &self.bounds) {
                Some(workload) => {
                    self.stats.emitted += 1;
                    self.pending.push_back(workload);
                }
                None => self.stats.discarded += 1,
            }
        }
    }
}

fn persistence_option_count(kind: OpKind, is_last: bool, bounds: &Bounds) -> u64 {
    // Mirrors `phases::persistence_options` without building the ops.
    let choices = &bounds.persistence;
    let mut count = 0u64;
    if choices.fsync {
        count += 1;
    }
    if choices.fdatasync && is_last && kind.is_data_op() {
        count += 1;
    }
    if choices.sync {
        count += 1;
    }
    if !is_last && choices.allow_none {
        count += 1;
    }
    count.max(1)
}

impl Iterator for WorkloadGenerator {
    type Item = Workload;

    fn next(&mut self) -> Option<Workload> {
        loop {
            if let Some(workload) = self.pending.pop_front() {
                return Some(workload);
            }
            self.odometer.as_ref()?;
            self.expand_current();
            self.advance_odometer();
            if self.pending.is_empty() && self.odometer.is_none() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bounds_generate_quickly_and_deterministically() {
        let first: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        let second: Vec<Workload> = WorkloadGenerator::new(Bounds::tiny()).collect();
        assert_eq!(first, second, "generation must be deterministic");
        assert!(!first.is_empty());
        for workload in &first {
            assert!(workload.ends_with_persistence_point());
            assert_eq!(workload.sequence_length(), 1);
        }
    }

    #[test]
    fn stats_account_for_every_candidate() {
        let mut generator = WorkloadGenerator::new(Bounds::tiny());
        let emitted = generator.by_ref().count() as u64;
        let stats = generator.stats();
        assert_eq!(stats.emitted, emitted);
        assert_eq!(stats.candidates, stats.emitted + stats.discarded);
        assert!(stats.skeletons > 0);
    }

    #[test]
    fn estimate_is_an_upper_bound_on_emitted() {
        let bounds = Bounds::tiny();
        let estimate = WorkloadGenerator::estimate_candidates(&bounds);
        let mut generator = WorkloadGenerator::new(bounds);
        let emitted = generator.by_ref().count() as u64;
        let candidates = generator.stats().candidates;
        assert_eq!(estimate, candidates);
        assert!(estimate >= emitted);
    }

    #[test]
    fn seq1_estimate_matches_exhaustive_walk() {
        let bounds = Bounds::paper_seq1();
        let estimate = WorkloadGenerator::estimate_candidates(&bounds);
        let mut generator = WorkloadGenerator::new(bounds);
        let _ = generator.by_ref().count();
        assert_eq!(generator.stats().candidates, estimate);
    }
}
