//! Equivalence-class canonicalization for representative sweeps.
//!
//! The bounded spaces ACE enumerates are full of crash-behaviorally
//! equivalent candidates: the paper's default file set (`foo`, `bar`,
//! `A/foo`, `A/bar`, `B/foo`, `B/bar` under directories `A` and `B`) is
//! symmetric under swapping `foo`↔`bar` at every level and swapping the
//! isomorphic directories `A`↔`B`, so `creat foo; fsync foo` and
//! `creat bar; fsync bar` exercise exactly the same file-system logic.
//! Testing one *representative* per equivalence class preserves the set of
//! discovered bug groups while cutting the tested-workload count by the
//! average orbit size (up to 16× for the paper file set) — the lever that
//! opens the seq-4 spaces the paper never reached.
//!
//! Three pieces:
//!
//! * **Automorphisms** ([`Classifier::new`] enumerates them): the
//!   permutations of the bounded [`FileSet`] that preserve its forest
//!   structure — sibling files under one parent may be permuted, and
//!   sibling directories may be swapped when their subtrees are isomorphic
//!   (the swap maps everything inside along). Applying an automorphism to a
//!   workload's operations yields a workload with identical crash behavior
//!   on any path-name-agnostic file system.
//! * **Canonical keys** ([`Classifier::key`]): a first-use relabeling of
//!   every path in the op sequence. Walking the ops in order, each path is
//!   renamed to `d<rank>`/`f<rank>` labels by order of first use among its
//!   parent's used children of that type (see `docs/FORMATS.md` for the
//!   grammar). The key is invariant under every automorphism, so all
//!   members of an orbit share one key.
//! * **Representatives** ([`Classifier::classify`]): a candidate is the
//!   representative of its class iff no automorphism — whose image stays
//!   inside the enumerated candidate space — maps it to a candidate with a
//!   strictly smaller phase-2 digit tuple. Because the automorphism set is
//!   closed under composition, exactly one in-space member of each orbit
//!   passes this test, and it is the orbit's enumeration-minimal member —
//!   so the full sweep's lexicographically-first exemplar per bug group is
//!   always a representative, and a representative-only sweep reproduces
//!   the exact exemplar bytes. The check is purely local to the candidate,
//!   which keeps representative selection stable under any
//!   [`Bounds::shard`] split.
//!
//! The scheme is versioned ([`CANON_VERSION`]): the harness mixes the
//! version into checkpoint fingerprints and the distributed job scope, so
//! a coordinator and worker that disagree about what "equivalent" means
//! reject each other instead of silently pruning different candidates.

use std::collections::{HashMap, HashSet};

use b3_vfs::workload::{FileSet, Op, OpKind, Workload};

use crate::bounds::Bounds;
use crate::generator::persistence_option_count;
use crate::phases::{persistence_options, phase2_candidates, phase4_dependencies};

/// Version of the canonicalization scheme (key grammar + automorphism
/// definition + representative rule). Bump whenever any of the three
/// changes meaning, so mixed-version sweeps fail the fingerprint check
/// instead of producing an inconsistent prune.
pub const CANON_VERSION: u32 = 1;

/// Safety cap on the enumerated automorphism group. The paper file sets
/// have at most 16 automorphisms; a pathological file set whose group
/// exceeds the cap degrades to the identity-only group (no pruning, still
/// sound) rather than an incomplete — and therefore non-closed — subset.
const MAX_AUTOMORPHISMS: usize = 4096;

/// How [`Classifier::classify`] placed one candidate within its class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Class {
    /// The candidate is its class's representative (the enumeration-minimal
    /// in-space orbit member) and should be tested.
    Representative {
        /// The canonical key shared by every member of the class.
        key: String,
    },
    /// The candidate is a non-representative member; a representative sweep
    /// prunes it.
    Member {
        /// The canonical key shared by every member of the class.
        key: String,
        /// The representative's op sequence (the candidate's ops mapped
        /// through the minimizing automorphism).
        rep_ops: Vec<Op>,
        /// The representative's global candidate index (0-based), from
        /// which its workload name derives.
        rep_index: u64,
    },
}

impl Class {
    /// The canonical key shared by every member of the class.
    pub fn key(&self) -> &str {
        match self {
            Class::Representative { key } | Class::Member { key, .. } => key,
        }
    }

    /// True for [`Class::Representative`].
    pub fn is_representative(&self) -> bool {
        matches!(self, Class::Representative { .. })
    }
}

/// One file-set automorphism, pre-compiled into per-kind digit-translation
/// tables: `digit[kind][i]` is the phase-2 candidate index the automorphism
/// maps candidate `i` of `kind` to, or `None` when the image falls outside
/// the enumerated candidate list (e.g. a `link` pair whose image is in the
/// pruned reversed order).
struct Sigma {
    /// Path mapping (total over the file set; identity entries omitted).
    map: HashMap<String, String>,
    /// Per-kind digit translation, aligned with `bounds.ops`.
    digit: Vec<Vec<Option<usize>>>,
}

impl Sigma {
    fn map_path(&self, path: &str) -> String {
        self.map
            .get(path)
            .cloned()
            .unwrap_or_else(|| path.to_string())
    }

    /// Applies the automorphism to one operation (all path fields mapped,
    /// every other parameter kept verbatim).
    fn apply(&self, op: &Op) -> Op {
        map_op_paths(op, &mut |p| self.map_path(p))
    }
}

/// Per-kind phase-2 facts: the candidate list and its inverse lookup.
struct KindTable {
    candidates: Vec<Op>,
    index: HashMap<Op, usize>,
}

/// Per-skeleton odometer facts mirroring the generator's enumeration
/// order: skeletons are a rightmost-fastest odometer over `bounds.ops`,
/// and within a skeleton the candidate index decomposes as
/// `prefix + core_index * per_core + persist_index`.
struct SkeletonInfo {
    /// Kind indices (into `bounds.ops`) per sequence position.
    kinds: Vec<usize>,
    /// Global candidate index of this skeleton's first candidate.
    prefix: u64,
    /// Product of per-position persistence radices.
    per_core: u64,
    /// Phase-2 radix per position.
    core_radix: Vec<u64>,
    /// Phase-3 radix per position.
    persist_radix: Vec<u64>,
}

/// Decomposition of an assembled candidate back into odometer digits.
struct Decomposed {
    skeleton: usize,
    core_digits: Vec<usize>,
    persist_digits: Vec<usize>,
}

/// Classifies assembled candidates into canonical equivalence classes for
/// one [`Bounds`] configuration. Read-only after construction; share by
/// reference across sweep worker threads.
pub struct Classifier {
    bounds: Bounds,
    /// Directory paths of the file set (for dir/file typing in keys).
    dirs: HashSet<String>,
    /// Non-identity automorphisms as digit-translation tables.
    sigmas: Vec<Sigma>,
    kinds: Vec<KindTable>,
    kind_index: HashMap<OpKind, usize>,
    skeletons: Vec<SkeletonInfo>,
    skeleton_lookup: HashMap<Vec<usize>, usize>,
    /// Test-only hook: collapse directory structure out of keys (see
    /// [`Classifier::unsound_for_tests`]).
    flatten_keys: bool,
}

impl Classifier {
    /// Builds the classifier for `bounds`: enumerates the file-set
    /// automorphism group, compiles each automorphism into digit tables,
    /// and precomputes the skeleton prefix sums used for analytic
    /// candidate-index reconstruction.
    pub fn new(bounds: &Bounds) -> Classifier {
        let maps = forest_automorphisms(&bounds.files);
        Self::with_maps(bounds, maps, false)
    }

    /// The number of non-identity automorphisms in use (16 for the paper
    /// file set, 0 for a file set with no symmetry).
    pub fn num_automorphisms(&self) -> usize {
        self.sigmas.len()
    }

    /// Test-only: a deliberately **over-coarse** classifier that treats
    /// every pair of files as interchangeable regardless of their parent
    /// directory (and flattens directory structure out of keys). This
    /// merges classes whose members genuinely differ in crash behavior —
    /// e.g. `fsync foo` vs `fsync A/foo` hit different directory-persistence
    /// logic — which is exactly the false pruning Audit mode must detect.
    /// Never use outside tests.
    #[doc(hidden)]
    pub fn unsound_for_tests(bounds: &Bounds) -> Classifier {
        let files = bounds.files.files().to_vec();
        let mut maps = forest_automorphisms(&bounds.files);
        for i in 0..files.len() {
            for j in i + 1..files.len() {
                let mut map = HashMap::new();
                map.insert(files[i].clone(), files[j].clone());
                map.insert(files[j].clone(), files[i].clone());
                maps.push(map);
            }
        }
        Self::with_maps(bounds, maps, true)
    }

    fn with_maps(
        bounds: &Bounds,
        maps: Vec<HashMap<String, String>>,
        flatten_keys: bool,
    ) -> Classifier {
        let kinds: Vec<KindTable> = bounds
            .ops
            .iter()
            .map(|kind| {
                let candidates = phase2_candidates(*kind, bounds);
                let index = candidates
                    .iter()
                    .enumerate()
                    .map(|(i, op)| (op.clone(), i))
                    .collect();
                KindTable { candidates, index }
            })
            .collect();
        let kind_index = bounds
            .ops
            .iter()
            .enumerate()
            .map(|(i, kind)| (*kind, i))
            .collect();

        let sigmas = maps
            .into_iter()
            .filter(|map| map.iter().any(|(from, to)| from != to))
            .map(|map| {
                let digit = kinds
                    .iter()
                    .map(|table| {
                        table
                            .candidates
                            .iter()
                            .map(|op| {
                                let mapped = map_op_paths(op, &mut |p| {
                                    map.get(p).cloned().unwrap_or_else(|| p.to_string())
                                });
                                table.index.get(&mapped).copied()
                            })
                            .collect()
                    })
                    .collect();
                Sigma { map, digit }
            })
            .collect();

        // Skeletons in generator enumeration order (rightmost position
        // fastest), with per-skeleton prefix sums of candidate counts.
        let mut skeletons = Vec::new();
        let mut skeleton_lookup = HashMap::new();
        let mut prefix = 0u64;
        if !bounds.ops.is_empty() || bounds.seq_len == 0 {
            let mut digits = vec![0usize; bounds.seq_len];
            loop {
                let core_radix: Vec<u64> = digits
                    .iter()
                    .map(|&k| kinds[k].candidates.len() as u64)
                    .collect();
                let persist_radix: Vec<u64> = digits
                    .iter()
                    .enumerate()
                    .map(|(position, &k)| {
                        let is_last = position + 1 == bounds.seq_len;
                        persistence_option_count(bounds.ops[k], is_last, bounds)
                    })
                    .collect();
                let per_core: u64 = persist_radix.iter().product();
                let total: u64 = core_radix.iter().product::<u64>().saturating_mul(per_core);
                skeleton_lookup.insert(digits.clone(), skeletons.len());
                skeletons.push(SkeletonInfo {
                    kinds: digits.clone(),
                    prefix,
                    per_core,
                    core_radix,
                    persist_radix,
                });
                prefix = prefix.saturating_add(total);
                if !advance(&mut digits, bounds.ops.len()) {
                    break;
                }
            }
        }

        Classifier {
            bounds: bounds.clone(),
            dirs: bounds.files.dirs().iter().cloned().collect(),
            sigmas,
            kinds,
            kind_index,
            skeletons,
            skeleton_lookup,
            flatten_keys,
        }
    }

    /// The canonical key of an assembled op sequence: every path replaced by
    /// its first-use `d<rank>`/`f<rank>` label, all other parameters
    /// verbatim, ops joined with `"; "`. Invariant under every file-set
    /// automorphism. See `docs/FORMATS.md` for the grammar.
    pub fn key(&self, ops: &[Op]) -> String {
        let mut labels: HashMap<String, String> = HashMap::new();
        let mut counters: HashMap<(String, bool), usize> = HashMap::new();
        let mut rendered = Vec::with_capacity(ops.len());
        for op in ops {
            let relabeled =
                map_op_paths(op, &mut |path| self.label(path, &mut labels, &mut counters));
            rendered.push(render(&relabeled));
        }
        rendered.join("; ")
    }

    fn label(
        &self,
        path: &str,
        labels: &mut HashMap<String, String>,
        counters: &mut HashMap<(String, bool), usize>,
    ) -> String {
        if let Some(label) = labels.get(path) {
            return label.clone();
        }
        let is_dir = self.dirs.contains(path);
        let parent_label = if self.flatten_keys {
            String::new()
        } else {
            match path.rsplit_once('/') {
                Some((parent, _)) => self.label(parent, labels, counters),
                None => String::new(),
            }
        };
        let rank = counters
            .entry((parent_label.clone(), is_dir))
            .and_modify(|r| *r += 1)
            .or_insert(0);
        let tag = if is_dir { 'd' } else { 'f' };
        let label = if parent_label.is_empty() {
            format!("{tag}{rank}")
        } else {
            format!("{parent_label}/{tag}{rank}")
        };
        labels.insert(path.to_string(), label.clone());
        label
    }

    /// Classifies one assembled candidate (core ops interleaved with their
    /// phase-3 persistence ops, i.e. a generated `Workload`'s `ops`).
    /// Returns `None` when the sequence does not decompose into this
    /// bounds' candidate space (never the case for workloads the bounds'
    /// own generator emitted).
    pub fn classify(&self, ops: &[Op]) -> Option<Class> {
        let d = self.decompose(ops)?;
        let key = self.key(ops);
        let skeleton = &self.skeletons[d.skeleton];
        let mut best: Option<(Vec<usize>, &Sigma)> = None;
        for sigma in &self.sigmas {
            let mut digits = Vec::with_capacity(d.core_digits.len());
            let mut in_space = true;
            for (position, &digit) in d.core_digits.iter().enumerate() {
                match sigma.digit[skeleton.kinds[position]][digit] {
                    Some(translated) => digits.push(translated),
                    None => {
                        in_space = false;
                        break;
                    }
                }
            }
            if !in_space || digits >= d.core_digits {
                continue;
            }
            if best.as_ref().is_none_or(|(b, _)| digits < *b) {
                best = Some((digits, sigma));
            }
        }
        Some(match best {
            None => Class::Representative { key },
            Some((digits, sigma)) => {
                let rep_ops: Vec<Op> = ops.iter().map(|op| sigma.apply(op)).collect();
                let rep_index = self.index_of(d.skeleton, &digits, &d.persist_digits);
                Class::Member {
                    key,
                    rep_ops,
                    rep_index,
                }
            }
        })
    }

    /// The global candidate index (0-based) of an assembled candidate —
    /// the inverse of the generator's `skip_to` addressing, computed
    /// analytically from the cached skeleton prefix sums.
    pub fn candidate_index(&self, ops: &[Op]) -> Option<u64> {
        let d = self.decompose(ops)?;
        Some(self.index_of(d.skeleton, &d.core_digits, &d.persist_digits))
    }

    /// The workload name the generator gives the candidate at a global
    /// index (names are 1-based zero-padded enumeration indices).
    pub fn workload_name(&self, index: u64) -> String {
        format!("{}-{:07}", self.bounds.name_prefix, index + 1)
    }

    /// Builds the representative's full workload (phase-4 setup included)
    /// from a [`Class::Member`]'s `rep_ops` and `rep_index` — what Audit
    /// mode crash-tests against the pruned member. Returns `None` when
    /// phase 4 rejects the sequence (for a sound classifier this cannot
    /// happen when the member itself was emitted; a divergence here is
    /// itself an audit failure).
    pub fn representative_workload(&self, rep_ops: &[Op], rep_index: u64) -> Option<Workload> {
        let name = self.workload_name(rep_index);
        phase4_dependencies(&name, rep_ops.to_vec(), &self.bounds)
    }

    fn index_of(&self, skeleton: usize, core_digits: &[usize], persist_digits: &[usize]) -> u64 {
        let info = &self.skeletons[skeleton];
        let mut core = 0u64;
        for (position, &digit) in core_digits.iter().enumerate() {
            core = core * info.core_radix[position] + digit as u64;
        }
        let mut persist = 0u64;
        for (position, &digit) in persist_digits.iter().enumerate() {
            persist = persist * info.persist_radix[position] + digit as u64;
        }
        info.prefix + core * info.per_core + persist
    }

    /// Splits an assembled sequence back into per-position (core op,
    /// persistence choice) pairs and resolves the odometer digits.
    fn decompose(&self, ops: &[Op]) -> Option<Decomposed> {
        let mut pairs: Vec<(&Op, Option<&Op>)> = Vec::new();
        let mut iter = ops.iter().peekable();
        while let Some(op) = iter.next() {
            if op.is_persistence_point() {
                return None; // persistence op with no preceding core op
            }
            let persist = match iter.peek() {
                Some(next) if next.is_persistence_point() => iter.next(),
                _ => None,
            };
            pairs.push((op, persist));
        }
        if pairs.len() != self.bounds.seq_len {
            return None;
        }

        let skeleton_digits: Vec<usize> = pairs
            .iter()
            .map(|(op, _)| self.kind_index.get(&op.kind()).copied())
            .collect::<Option<_>>()?;
        let skeleton = *self.skeleton_lookup.get(&skeleton_digits)?;

        let mut core_digits = Vec::with_capacity(pairs.len());
        let mut persist_digits = Vec::with_capacity(pairs.len());
        for (position, (core, persist)) in pairs.iter().enumerate() {
            let table = &self.kinds[skeleton_digits[position]];
            core_digits.push(*table.index.get(*core)?);
            let is_last = position + 1 == pairs.len();
            let options = persistence_options(core, is_last, &self.bounds);
            let chosen: Option<Op> = persist.cloned();
            persist_digits.push(options.iter().position(|option| *option == chosen)?);
        }
        Some(Decomposed {
            skeleton,
            core_digits,
            persist_digits,
        })
    }
}

/// Applies a file-set symmetry (a path relabeling such as one returned by
/// [`forest_automorphisms`]) to every path argument of an op sequence —
/// the workload's image under the symmetry. Paths absent from the map are
/// kept verbatim.
pub fn apply_path_map(ops: &[Op], map: &HashMap<String, String>) -> Vec<Op> {
    ops.iter()
        .map(|op| {
            map_op_paths(op, &mut |p| {
                map.get(p).cloned().unwrap_or_else(|| p.to_string())
            })
        })
        .collect()
}

/// Rewrites every path field of an operation through `f`, in
/// [`Op::paths`] order, keeping all other parameters verbatim.
fn map_op_paths(op: &Op, f: &mut impl FnMut(&str) -> String) -> Op {
    match op {
        Op::Creat { path } => Op::Creat { path: f(path) },
        Op::Mkdir { path } => Op::Mkdir { path: f(path) },
        Op::Mkfifo { path } => Op::Mkfifo { path: f(path) },
        Op::Symlink { target, linkpath } => Op::Symlink {
            target: f(target),
            linkpath: f(linkpath),
        },
        Op::Link { existing, new } => Op::Link {
            existing: f(existing),
            new: f(new),
        },
        Op::Unlink { path } => Op::Unlink { path: f(path) },
        Op::Remove { path } => Op::Remove { path: f(path) },
        Op::Rmdir { path } => Op::Rmdir { path: f(path) },
        Op::Rename { from, to } => Op::Rename {
            from: f(from),
            to: f(to),
        },
        Op::Write { path, mode, spec } => Op::Write {
            path: f(path),
            mode: *mode,
            spec: *spec,
        },
        Op::Mmap { path, offset, len } => Op::Mmap {
            path: f(path),
            offset: *offset,
            len: *len,
        },
        Op::Msync { path, offset, len } => Op::Msync {
            path: f(path),
            offset: *offset,
            len: *len,
        },
        Op::Truncate { path, size } => Op::Truncate {
            path: f(path),
            size: *size,
        },
        Op::Falloc {
            path,
            mode,
            offset,
            len,
        } => Op::Falloc {
            path: f(path),
            mode: *mode,
            offset: *offset,
            len: *len,
        },
        Op::SetXattr { path, name, value } => Op::SetXattr {
            path: f(path),
            name: name.clone(),
            value: value.clone(),
        },
        Op::RemoveXattr { path, name } => Op::RemoveXattr {
            path: f(path),
            name: name.clone(),
        },
        Op::Fsync { path } => Op::Fsync { path: f(path) },
        Op::Fdatasync { path } => Op::Fdatasync { path: f(path) },
        Op::Sync => Op::Sync,
    }
}

/// Compact, stable rendering of one (relabeled) operation for canonical
/// keys. The grammar is specified in `docs/FORMATS.md` and enforced by the
/// `docs` integration test.
fn render(op: &Op) -> String {
    match op {
        Op::Creat { path } => format!("creat({path})"),
        Op::Mkdir { path } => format!("mkdir({path})"),
        Op::Mkfifo { path } => format!("mkfifo({path})"),
        Op::Symlink { target, linkpath } => format!("symlink({target},{linkpath})"),
        Op::Link { existing, new } => format!("link({existing},{new})"),
        Op::Unlink { path } => format!("unlink({path})"),
        Op::Remove { path } => format!("remove({path})"),
        Op::Rmdir { path } => format!("rmdir({path})"),
        Op::Rename { from, to } => format!("rename({from},{to})"),
        Op::Write { path, mode, spec } => format!("write({path},{mode:?},{spec:?})"),
        Op::Mmap { path, offset, len } => format!("mmap({path},{offset},{len})"),
        Op::Msync { path, offset, len } => format!("msync({path},{offset},{len})"),
        Op::Truncate { path, size } => format!("truncate({path},{size})"),
        Op::Falloc {
            path,
            mode,
            offset,
            len,
        } => format!("falloc({path},{mode:?},{offset},{len})"),
        Op::SetXattr { path, name, value } => format!("setxattr({path},{name},{value})"),
        Op::RemoveXattr { path, name } => format!("removexattr({path},{name})"),
        Op::Fsync { path } => format!("fsync({path})"),
        Op::Fdatasync { path } => format!("fdatasync({path})"),
        Op::Sync => "sync".to_string(),
    }
}

/// One node of the file-set forest (children keyed by their single path
/// segment relative to this node).
#[derive(Default)]
struct Node {
    files: Vec<String>,
    dirs: Vec<(String, Node)>,
}

impl Node {
    fn child_dir(&mut self, name: &str) -> &mut Node {
        let position = match self.dirs.iter().position(|(n, _)| n == name) {
            Some(position) => position,
            None => {
                self.dirs.push((name.to_string(), Node::default()));
                self.dirs.len() - 1
            }
        };
        &mut self.dirs[position].1
    }

    fn descend(&mut self, path: &str) -> &mut Node {
        let mut node = self;
        for segment in path.split('/') {
            node = node.child_dir(segment);
        }
        node
    }

    /// Canonical shape string; equal shapes ⟺ isomorphic subtrees.
    fn shape(&self) -> String {
        let mut child_shapes: Vec<String> = self.dirs.iter().map(|(_, n)| n.shape()).collect();
        child_shapes.sort();
        format!("f{};[{}]", self.files.len(), child_shapes.join(","))
    }

    /// All structure-preserving permutations of this subtree, as maps over
    /// paths *relative to this node* (identity entries included).
    fn automorphisms(&self) -> Vec<HashMap<String, String>> {
        // Per-parent file permutations.
        let mut factors: Vec<Vec<HashMap<String, String>>> = Vec::new();
        let file_maps: Vec<HashMap<String, String>> = permutations(self.files.len())
            .into_iter()
            .map(|perm| {
                self.files
                    .iter()
                    .enumerate()
                    .map(|(i, name)| (name.clone(), self.files[perm[i]].clone()))
                    .collect()
            })
            .collect();
        factors.push(file_maps);

        // Directory siblings grouped into isomorphism classes; a class of k
        // members contributes (permutation of the class) × (independent
        // subtree automorphisms per member).
        let mut classes: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, (_, node)) in self.dirs.iter().enumerate() {
            classes.entry(node.shape()).or_default().push(i);
        }
        let mut class_list: Vec<Vec<usize>> = classes.into_values().collect();
        class_list.sort();
        for members in class_list {
            let subtree_autos: Vec<Vec<HashMap<String, String>>> = members
                .iter()
                .map(|&i| self.dirs[i].1.automorphisms())
                .collect();
            let mut class_maps: Vec<HashMap<String, String>> = Vec::new();
            for perm in permutations(members.len()) {
                // Independent subtree automorphism choice per member.
                let mut partial: Vec<HashMap<String, String>> = vec![HashMap::new()];
                for (slot, &member) in members.iter().enumerate() {
                    let source = &self.dirs[member].0;
                    let target = &self.dirs[members[perm[slot]]].0;
                    let mut extended = Vec::new();
                    for base in &partial {
                        for auto in &subtree_autos[slot] {
                            let mut map = base.clone();
                            map.insert(source.clone(), target.clone());
                            for (from, to) in auto {
                                map.insert(format!("{source}/{from}"), format!("{target}/{to}"));
                            }
                            extended.push(map);
                            if extended.len() > MAX_AUTOMORPHISMS {
                                break;
                            }
                        }
                        if extended.len() > MAX_AUTOMORPHISMS {
                            break;
                        }
                    }
                    partial = extended;
                }
                class_maps.extend(partial);
                if class_maps.len() > MAX_AUTOMORPHISMS {
                    break;
                }
            }
            factors.push(class_maps);
        }

        // Cartesian product of all factors.
        let mut result: Vec<HashMap<String, String>> = vec![HashMap::new()];
        for factor in factors {
            let mut extended = Vec::with_capacity(result.len() * factor.len().max(1));
            for base in &result {
                for addition in &factor {
                    let mut map = base.clone();
                    map.extend(addition.iter().map(|(k, v)| (k.clone(), v.clone())));
                    extended.push(map);
                    if extended.len() > MAX_AUTOMORPHISMS {
                        return vec![HashMap::new()]; // identity-only fallback
                    }
                }
            }
            result = extended;
        }
        result
    }
}

/// Enumerates the automorphism group of a [`FileSet`]'s forest: every map
/// from paths to paths that permutes sibling files under each parent and
/// swaps sibling directories with isomorphic subtrees (moving their
/// contents along). Includes the identity.
pub fn forest_automorphisms(files: &FileSet) -> Vec<HashMap<String, String>> {
    let mut root = Node::default();
    for dir in files.dirs() {
        root.descend(dir);
    }
    for file in files.files() {
        match file.rsplit_once('/') {
            Some((parent, name)) => root.descend(parent).files.push(name.to_string()),
            None => root.files.push(file.clone()),
        }
    }
    root.automorphisms()
}

/// All permutations of `0..n` (lexicographic order, identity first).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut result = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, 0, &mut result);
    result.sort();
    result
}

fn heap_permute(items: &mut Vec<usize>, start: usize, out: &mut Vec<Vec<usize>>) {
    if start == items.len() {
        out.push(items.clone());
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        heap_permute(items, start + 1, out);
        items.swap(start, i);
    }
}

/// Rightmost-fastest odometer step over uniform radix; false on wrap.
fn advance(digits: &mut [usize], radix: usize) -> bool {
    for position in (0..digits.len()).rev() {
        digits[position] += 1;
        if digits[position] < radix {
            return true;
        }
        digits[position] = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;

    #[test]
    fn paper_file_set_has_sixteen_automorphisms() {
        let maps = forest_automorphisms(&FileSet::paper_default());
        // foo↔bar at the root (2) × A↔B with contents (2) × foo↔bar inside
        // A (2) × foo↔bar inside B (2) = 16, identity included.
        assert_eq!(maps.len(), 16);
        // Spot-check the A↔B swap maps contained files along.
        assert!(maps.iter().any(|m| {
            m.get("A").map(String::as_str) == Some("B")
                && m.get("A/foo").map(String::as_str) == Some("B/foo")
        }));
    }

    #[test]
    fn minimal_file_set_has_no_symmetry() {
        // foo (root) and A/foo live under different parents; A is the only
        // directory — the group is trivial.
        let classifier = Classifier::new(&Bounds::tiny());
        assert_eq!(classifier.num_automorphisms(), 0);
    }

    #[test]
    fn nested_file_set_keeps_asymmetric_dirs_apart() {
        // nested(): A contains C, B does not — A and B are not isomorphic,
        // so only the per-parent file swaps remain: root(2) × A(2) × B(2)
        // × C(2) = 16.
        let maps = forest_automorphisms(&FileSet::nested());
        assert_eq!(maps.len(), 16);
        assert!(maps
            .iter()
            .all(|m| m.get("A").map(String::as_str) != Some("B")));
    }

    #[test]
    fn keys_are_invariant_under_automorphisms() {
        let bounds = Bounds::paper_seq2();
        let classifier = Classifier::new(&bounds);
        let maps = forest_automorphisms(&bounds.files);
        for workload in WorkloadGenerator::new(bounds.clone()).take(500) {
            let key = classifier.key(&workload.ops);
            for map in &maps {
                let mapped: Vec<Op> = workload
                    .ops
                    .iter()
                    .map(|op| {
                        map_op_paths(op, &mut |p| {
                            map.get(p).cloned().unwrap_or_else(|| p.to_string())
                        })
                    })
                    .collect();
                assert_eq!(classifier.key(&mapped), key, "workload {}", workload.name);
            }
        }
    }

    #[test]
    fn every_class_has_exactly_one_representative() {
        use std::collections::HashMap;
        let bounds = Bounds::paper_seq1();
        let classifier = Classifier::new(&bounds);
        // orbit key (canonical) -> (reps seen, members seen)
        let mut classes: HashMap<String, (u64, u64)> = HashMap::new();
        for workload in WorkloadGenerator::new(bounds.clone()) {
            let class = classifier.classify(&workload.ops).expect("decomposes");
            let entry = classes.entry(class.key().to_string()).or_insert((0, 0));
            entry.1 += 1;
            if class.is_representative() {
                entry.0 += 1;
            } else if let Class::Member {
                rep_ops, rep_index, ..
            } = &class
            {
                // The representative must itself classify as representative
                // and share the member's key.
                let rep = classifier.classify(rep_ops).expect("rep decomposes");
                assert!(rep.is_representative(), "double hop for {}", workload.name);
                assert_eq!(rep.key(), class.key());
                assert_eq!(classifier.candidate_index(rep_ops), Some(*rep_index));
            }
        }
        for (key, (reps, members)) in &classes {
            assert!(
                *reps >= 1,
                "class {key:?} with {members} members has no representative"
            );
        }
        // With a sound (subgroup) symmetry every key-class has exactly one
        // representative for the paper file set.
        assert!(classes.values().all(|(reps, _)| *reps == 1));
        // And the pruning is real: seq-1 has many multi-member classes.
        assert!(classes.values().any(|(_, members)| *members > 1));
    }

    #[test]
    fn candidate_index_inverts_generator_names() {
        let bounds = Bounds::tiny();
        let classifier = Classifier::new(&bounds);
        for workload in WorkloadGenerator::new(bounds.clone()) {
            let index = classifier
                .candidate_index(&workload.ops)
                .expect("decomposes");
            assert_eq!(classifier.workload_name(index), workload.name);
        }
    }
}
