//! The CrashMonkey adapter.
//!
//! The original ACE emits workloads in a high-level language and a custom
//! adapter compiles each one into a C++ test program that CrashMonkey links
//! against (§5.2). In this reproduction both tools share the workload IR, so
//! the adapter's job reduces to validating the invariants CrashMonkey relies
//! on and serializing the workload into the text format used to ship
//! workloads to remote test machines (§6.1's "copy workloads to the
//! Chameleon nodes" step).

use b3_vfs::error::{FsError, FsResult};
use b3_vfs::workload::Workload;

/// Validates a generated workload and returns the textual test-case form
/// that gets shipped to (and parsed back by) the test runners.
pub fn to_crashmonkey_test(workload: &Workload) -> FsResult<String> {
    if workload.ops.is_empty() {
        return Err(FsError::InvalidArgument(
            "workload has no core operations".to_string(),
        ));
    }
    if !workload.ends_with_persistence_point() {
        return Err(FsError::InvalidArgument(format!(
            "workload {} does not end with a persistence point",
            workload.name
        )));
    }
    Ok(workload.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_vfs::workload::{parse_workload, Op};

    #[test]
    fn round_trips_through_the_text_format() {
        let workload = Workload::with_setup(
            "adapter-demo",
            vec![Op::Mkdir { path: "A".into() }],
            vec![
                Op::Creat {
                    path: "A/foo".into(),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
            ],
        );
        let text = to_crashmonkey_test(&workload).unwrap();
        let parsed = parse_workload(&text, "x").unwrap();
        assert_eq!(parsed, workload);
    }

    #[test]
    fn rejects_workloads_without_final_persistence() {
        let workload = Workload::new("bad", vec![Op::Creat { path: "foo".into() }]);
        assert!(to_crashmonkey_test(&workload).is_err());
        let empty = Workload::new("empty", vec![]);
        assert!(to_crashmonkey_test(&empty).is_err());
    }
}
