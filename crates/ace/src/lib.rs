//! ACE — the Automatic Crash Explorer.
//!
//! ACE exhaustively generates workloads within user-specified bounds
//! (§5.2 of the paper), in four phases:
//!
//! 1. **Phase 1 — skeletons**: choose the sequence of core file-system
//!    operations (with repetition) from the bounded operation set.
//! 2. **Phase 2 — parameters**: choose the arguments of every operation from
//!    the bounded file set, pruning symmetrical choices (e.g. only one of
//!    `link(foo, bar)` / `link(bar, foo)`).
//! 3. **Phase 3 — persistence points**: optionally follow each operation
//!    with `fsync`/`fdatasync` of one of the files it touches or a global
//!    `sync`; the final operation is always followed by a persistence point
//!    so the workload is not equivalent to a shorter one.
//! 4. **Phase 4 — dependencies**: prepend the `mkdir`/`creat` operations
//!    required for the workload to execute on a POSIX file system, and
//!    discard argument combinations that can never execute successfully.
//!
//! The output is a stream of [`Workload`]s consumed directly by CrashMonkey
//! (the in-process equivalent of the paper's ACE→C++ adapter).

pub mod adapter;
pub mod bounds;
pub mod canon;
pub mod generator;
pub mod phases;
pub mod sim;

pub use adapter::to_crashmonkey_test;
pub use bounds::{Bounds, PersistenceChoices, SequencePreset};
pub use canon::{apply_path_map, forest_automorphisms, Class, Classifier, CANON_VERSION};
pub use generator::{GenerationStats, WorkloadGenerator};
pub use phases::{phase1_skeletons, phase2_parameters, phase3_persistence, phase4_dependencies};

use b3_vfs::workload::Workload;

/// Generates every workload within `bounds`, materialized into a vector.
/// For large bounds prefer iterating [`WorkloadGenerator`] lazily.
pub fn generate_all(bounds: &Bounds) -> Vec<Workload> {
    WorkloadGenerator::new(bounds.clone()).collect()
}

/// Counts the workloads within `bounds` without keeping them in memory.
pub fn count_workloads(bounds: &Bounds) -> u64 {
    WorkloadGenerator::new(bounds.clone()).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_vfs::workload::OpKind;

    #[test]
    fn seq1_workloads_are_generated_and_end_with_persistence() {
        let bounds = Bounds::paper_seq1();
        let workloads = generate_all(&bounds);
        assert!(
            workloads.len() >= 200,
            "expected a few hundred seq-1 workloads, got {}",
            workloads.len()
        );
        for workload in &workloads {
            assert_eq!(workload.sequence_length(), 1, "{workload}");
            assert!(workload.ends_with_persistence_point(), "{workload}");
        }
    }

    #[test]
    fn generated_workload_names_are_unique() {
        use std::collections::HashSet;
        let workloads = generate_all(&Bounds::paper_seq1());
        let names: HashSet<&String> = workloads.iter().map(|w| &w.name).collect();
        assert_eq!(names.len(), workloads.len());
    }

    #[test]
    fn seq2_subset_has_two_core_ops() {
        let mut bounds = Bounds::paper_seq2();
        bounds.ops = vec![OpKind::Link, OpKind::Rename];
        let workloads = generate_all(&bounds);
        assert!(!workloads.is_empty());
        for workload in &workloads {
            assert_eq!(workload.sequence_length(), 2);
        }
    }
}
