//! A lightweight namespace simulator used by phase 4.
//!
//! Phase 4 must (a) prepend the dependency operations a workload needs
//! (creating parent directories and target files) and (b) discard argument
//! combinations that can never execute successfully on a POSIX file system
//! (linking over an existing name, removing a non-empty directory, …). Both
//! require tracking which paths exist and what they are as the workload's
//! operations are applied in order — that is all [`SimState`] does.

use std::collections::BTreeMap;

use b3_vfs::path::{components, is_ancestor, join, normalize, parent};
use b3_vfs::workload::{FileSet, Op};

/// The kind of a simulated namespace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    File,
    Dir,
    Symlink,
    Fifo,
}

/// Result of simulating a workload: either the dependency prefix it needs,
/// or the reason it can never execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOutcome {
    /// The workload is executable once the given setup operations run first.
    Valid { setup: Vec<Op> },
    /// The workload can never execute successfully.
    Invalid(String),
}

/// Tracks which paths exist while a candidate workload is simulated.
#[derive(Debug, Default, Clone)]
pub struct SimState {
    entries: BTreeMap<String, SimKind>,
    xattrs: BTreeMap<String, Vec<String>>,
    setup: Vec<Op>,
}

impl SimState {
    /// Creates an empty namespace (just the root).
    pub fn new() -> Self {
        SimState::default()
    }

    fn kind(&self, path: &str) -> Option<SimKind> {
        let path = normalize(path);
        if path.is_empty() {
            return Some(SimKind::Dir);
        }
        self.entries.get(&path).copied()
    }

    fn exists(&self, path: &str) -> bool {
        self.kind(path).is_some()
    }

    fn insert(&mut self, path: &str, kind: SimKind) {
        self.entries.insert(normalize(path), kind);
    }

    fn remove(&mut self, path: &str) {
        self.entries.remove(&normalize(path));
    }

    fn has_children(&self, dir: &str) -> bool {
        let dir = normalize(dir);
        self.entries
            .keys()
            .any(|p| p != &dir && is_ancestor(&dir, p))
    }

    /// Adds setup `mkdir`s for every missing ancestor directory of `path`.
    fn ensure_parents(&mut self, path: &str) -> Result<(), String> {
        let parent_path = parent(path).unwrap_or_default();
        let mut prefix = String::new();
        for comp in components(&parent_path) {
            let current = join(&prefix, &comp);
            match self.kind(&current) {
                Some(SimKind::Dir) => {}
                Some(_) => return Err(format!("{current} is not a directory")),
                None => {
                    self.setup.push(Op::Mkdir {
                        path: current.clone(),
                    });
                    self.insert(&current, SimKind::Dir);
                }
            }
            prefix = current;
        }
        Ok(())
    }

    /// Ensures a path exists, creating it (and its parents) as setup. The
    /// file set decides whether an unknown path is created as a file or a
    /// directory.
    fn ensure_exists(&mut self, path: &str, files: &FileSet) -> Result<SimKind, String> {
        if let Some(kind) = self.kind(path) {
            return Ok(kind);
        }
        self.ensure_parents(path)?;
        let normalized = normalize(path);
        let kind = if files.dirs().contains(&normalized) {
            self.setup.push(Op::Mkdir {
                path: normalized.clone(),
            });
            SimKind::Dir
        } else {
            self.setup.push(Op::Creat {
                path: normalized.clone(),
            });
            SimKind::File
        };
        self.insert(&normalized, kind);
        Ok(kind)
    }

    fn ensure_file(&mut self, path: &str, files: &FileSet) -> Result<(), String> {
        match self.ensure_exists(path, files)? {
            SimKind::File => Ok(()),
            other => Err(format!("{path} exists but is {other:?}, expected a file")),
        }
    }

    /// Simulates one operation, extending setup as needed. Returns an error
    /// message when the operation can never succeed.
    pub fn apply(&mut self, op: &Op, files: &FileSet) -> Result<(), String> {
        match op {
            Op::Creat { path } | Op::Mkfifo { path } => {
                self.ensure_parents(path)?;
                match self.kind(path) {
                    None => self.insert(
                        path,
                        if matches!(op, Op::Creat { .. }) {
                            SimKind::File
                        } else {
                            SimKind::Fifo
                        },
                    ),
                    Some(SimKind::Dir) => return Err(format!("{path} is a directory")),
                    Some(_) => {} // touch of an existing file
                }
                Ok(())
            }
            Op::Mkdir { path } => {
                self.ensure_parents(path)?;
                match self.kind(path) {
                    None => self.insert(path, SimKind::Dir),
                    Some(SimKind::Dir) => {}
                    Some(_) => return Err(format!("{path} exists and is not a directory")),
                }
                Ok(())
            }
            Op::Symlink { linkpath, .. } => {
                self.ensure_parents(linkpath)?;
                if self.exists(linkpath) {
                    return Err(format!("{linkpath} already exists"));
                }
                self.insert(linkpath, SimKind::Symlink);
                Ok(())
            }
            Op::Link { existing, new } => {
                self.ensure_file(existing, files)?;
                self.ensure_parents(new)?;
                if self.exists(new) {
                    return Err(format!("link target {new} already exists"));
                }
                self.insert(new, SimKind::File);
                Ok(())
            }
            Op::Unlink { path } => {
                self.ensure_file(path, files)?;
                self.remove(path);
                Ok(())
            }
            Op::Remove { path } => {
                let kind = self.ensure_exists(path, files)?;
                if kind == SimKind::Dir && self.has_children(path) {
                    return Err(format!("{path} is a non-empty directory"));
                }
                self.remove(path);
                Ok(())
            }
            Op::Rmdir { path } => {
                let kind = self.ensure_exists(path, files)?;
                if kind != SimKind::Dir {
                    return Err(format!("{path} is not a directory"));
                }
                if self.has_children(path) {
                    return Err(format!("{path} is not empty"));
                }
                self.remove(path);
                Ok(())
            }
            Op::Rename { from, to } => {
                let src_kind = self.ensure_exists(from, files)?;
                self.ensure_parents(to)?;
                if normalize(from) == normalize(to) {
                    return Ok(());
                }
                if is_ancestor(from, to) && src_kind == SimKind::Dir {
                    return Err(format!("cannot move {from} into itself"));
                }
                if let Some(dst_kind) = self.kind(to) {
                    match (src_kind, dst_kind) {
                        (SimKind::Dir, SimKind::Dir) if self.has_children(to) => {
                            return Err(format!("{to} is a non-empty directory"));
                        }
                        (SimKind::Dir, SimKind::Dir) => {}
                        (SimKind::Dir, _) => return Err(format!("{to} is not a directory")),
                        (_, SimKind::Dir) => return Err(format!("{to} is a directory")),
                        _ => {}
                    }
                    self.remove(to);
                }
                // Move the entry (and, for directories, its subtree).
                let from_norm = normalize(from);
                let to_norm = normalize(to);
                let moved: Vec<(String, SimKind)> = self
                    .entries
                    .iter()
                    .filter(|(p, _)| **p == from_norm || is_ancestor(&from_norm, p))
                    .map(|(p, k)| (p.clone(), *k))
                    .collect();
                for (old_path, kind) in moved {
                    self.entries.remove(&old_path);
                    let suffix = old_path[from_norm.len()..].trim_start_matches('/');
                    let new_path = if suffix.is_empty() {
                        to_norm.clone()
                    } else {
                        join(&to_norm, suffix)
                    };
                    self.entries.insert(new_path, kind);
                }
                Ok(())
            }
            Op::Write { path, .. } | Op::Mmap { path, .. } | Op::Msync { path, .. } => {
                self.ensure_file(path, files)
            }
            Op::Truncate { path, .. } | Op::Falloc { path, .. } => self.ensure_file(path, files),
            Op::SetXattr { path, name, .. } => {
                self.ensure_file(path, files)?;
                self.xattrs
                    .entry(normalize(path))
                    .or_default()
                    .push(name.clone());
                Ok(())
            }
            Op::RemoveXattr { path, name } => {
                self.ensure_file(path, files)?;
                let key = normalize(path);
                let present = self
                    .xattrs
                    .get(&key)
                    .is_some_and(|names| names.contains(name));
                if !present {
                    // Dependency: the attribute must exist before it can be
                    // removed.
                    self.setup.push(Op::SetXattr {
                        path: key.clone(),
                        name: name.clone(),
                        value: "val1".into(),
                    });
                    self.xattrs
                        .entry(key.clone())
                        .or_default()
                        .push(name.clone());
                }
                if let Some(names) = self.xattrs.get_mut(&key) {
                    names.retain(|n| n != name);
                }
                Ok(())
            }
            Op::Fsync { path } | Op::Fdatasync { path } => {
                if normalize(path).is_empty() {
                    return Ok(());
                }
                self.ensure_exists(path, files).map(|_| ())
            }
            Op::Sync => Ok(()),
        }
    }

    /// Simulates a full core-operation sequence and returns its dependency
    /// prefix or the reason it is invalid.
    ///
    /// Dependency operations generated along the way are *hoisted* to the
    /// front (the paper's phase 4 prepends them), which is sound because
    /// they only create files and directories that no earlier core operation
    /// removed — combinations where that would not hold are reported
    /// invalid by the simulation itself.
    pub fn plan(ops: &[Op], files: &FileSet) -> SimOutcome {
        let mut state = SimState::new();
        for op in ops {
            if let Err(reason) = state.apply(op, files) {
                return SimOutcome::Invalid(reason);
            }
        }
        SimOutcome::Valid { setup: state.setup }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> FileSet {
        FileSet::paper_default()
    }

    #[test]
    fn dependencies_for_figure4_workload() {
        // Figure 4: rename(A/foo, B/bar); link(B/bar, A/bar).
        let ops = vec![
            Op::Rename {
                from: "A/foo".into(),
                to: "B/bar".into(),
            },
            Op::Sync,
            Op::Link {
                existing: "B/bar".into(),
                new: "A/bar".into(),
            },
            Op::Fsync {
                path: "A/bar".into(),
            },
        ];
        match SimState::plan(&ops, &files()) {
            SimOutcome::Valid { setup } => {
                assert_eq!(
                    setup,
                    vec![
                        Op::Mkdir { path: "A".into() },
                        Op::Creat {
                            path: "A/foo".into()
                        },
                        Op::Mkdir { path: "B".into() },
                    ],
                    "phase 4 must create A, A/foo, and B exactly as in Figure 4"
                );
            }
            SimOutcome::Invalid(reason) => panic!("unexpectedly invalid: {reason}"),
        }
    }

    #[test]
    fn link_over_existing_name_is_invalid() {
        let ops = vec![
            Op::Creat { path: "foo".into() },
            Op::Creat { path: "bar".into() },
            Op::Link {
                existing: "foo".into(),
                new: "bar".into(),
            },
            Op::Sync,
        ];
        assert!(matches!(
            SimState::plan(&ops, &files()),
            SimOutcome::Invalid(_)
        ));
    }

    #[test]
    fn removexattr_gains_a_setxattr_dependency() {
        let ops = vec![
            Op::RemoveXattr {
                path: "foo".into(),
                name: "user.u1".into(),
            },
            Op::Sync,
        ];
        match SimState::plan(&ops, &files()) {
            SimOutcome::Valid { setup } => {
                assert!(setup.contains(&Op::Creat { path: "foo".into() }));
                assert!(setup.iter().any(|op| matches!(op, Op::SetXattr { .. })));
            }
            SimOutcome::Invalid(reason) => panic!("unexpectedly invalid: {reason}"),
        }
    }

    #[test]
    fn rename_moves_subtrees() {
        let ops = vec![
            Op::Mkdir { path: "A".into() },
            Op::Creat {
                path: "A/foo".into(),
            },
            Op::Rename {
                from: "A".into(),
                to: "B".into(),
            },
            Op::Fsync {
                path: "B/foo".into(),
            },
        ];
        assert!(matches!(
            SimState::plan(&ops, &files()),
            SimOutcome::Valid { .. }
        ));
    }

    #[test]
    fn rmdir_of_nonempty_directory_is_invalid() {
        let ops = vec![
            Op::Creat {
                path: "A/foo".into(),
            },
            Op::Rmdir { path: "A".into() },
            Op::Sync,
        ];
        assert!(matches!(
            SimState::plan(&ops, &files()),
            SimOutcome::Invalid(_)
        ));
    }

    #[test]
    fn unlink_of_missing_file_gets_created_as_dependency() {
        let ops = vec![
            Op::Unlink {
                path: "B/bar".into(),
            },
            Op::Sync,
        ];
        match SimState::plan(&ops, &files()) {
            SimOutcome::Valid { setup } => {
                assert_eq!(
                    setup,
                    vec![
                        Op::Mkdir { path: "B".into() },
                        Op::Creat {
                            path: "B/bar".into()
                        },
                    ]
                );
            }
            SimOutcome::Invalid(reason) => panic!("unexpectedly invalid: {reason}"),
        }
    }
}
