//! The four generation phases of ACE (§5.2, Figure 4).

use b3_vfs::fs::WriteMode;
use b3_vfs::path::parent;
use b3_vfs::workload::{Op, OpKind, Workload, WriteSpec};

use crate::bounds::Bounds;
use crate::sim::{SimOutcome, SimState};

/// Phase 1: every sequence (with repetition) of `seq_len` operation kinds
/// drawn from the bounded operation set — the *skeletons*.
pub fn phase1_skeletons(bounds: &Bounds) -> Vec<Vec<OpKind>> {
    let mut skeletons: Vec<Vec<OpKind>> = vec![Vec::new()];
    for _ in 0..bounds.seq_len {
        let mut next = Vec::with_capacity(skeletons.len() * bounds.ops.len());
        for skeleton in &skeletons {
            for op in &bounds.ops {
                let mut extended = skeleton.clone();
                extended.push(*op);
                next.push(extended);
            }
        }
        skeletons = next;
    }
    skeletons
}

/// Candidate concrete operations for one operation kind (the per-position
/// argument choices of phase 2).
pub fn phase2_candidates(kind: OpKind, bounds: &Bounds) -> Vec<Op> {
    let files = bounds.files.files();
    let dirs = bounds.files.dirs();
    match kind {
        OpKind::Creat => files
            .iter()
            .map(|f| Op::Creat { path: f.clone() })
            .collect(),
        OpKind::Mkfifo => files
            .iter()
            .map(|f| Op::Mkfifo { path: f.clone() })
            .collect(),
        OpKind::Mkdir => dirs.iter().map(|d| Op::Mkdir { path: d.clone() }).collect(),
        OpKind::Rmdir => dirs.iter().map(|d| Op::Rmdir { path: d.clone() }).collect(),
        OpKind::Unlink => files
            .iter()
            .map(|f| Op::Unlink { path: f.clone() })
            .collect(),
        OpKind::Remove => files
            .iter()
            .map(|f| Op::Remove { path: f.clone() })
            .chain(dirs.iter().map(|d| Op::Remove { path: d.clone() }))
            .collect(),
        OpKind::Truncate => files
            .iter()
            .flat_map(|f| {
                [0u64, 2048].into_iter().map(|size| Op::Truncate {
                    path: f.clone(),
                    size,
                })
            })
            .collect(),
        OpKind::SetXattr => files
            .iter()
            .map(|f| Op::SetXattr {
                path: f.clone(),
                name: "user.u1".into(),
                value: "val1".into(),
            })
            .collect(),
        OpKind::RemoveXattr => files
            .iter()
            .map(|f| Op::RemoveXattr {
                path: f.clone(),
                name: "user.u1".into(),
            })
            .collect(),
        OpKind::Falloc => files
            .iter()
            .flat_map(|f| {
                bounds.falloc_modes.iter().flat_map(move |mode| {
                    // One range inside a typical file, one past a typical EOF.
                    [(0u64, 8192u64), (16_384, 8192)]
                        .into_iter()
                        .map(move |(offset, len)| Op::Falloc {
                            path: f.clone(),
                            mode: *mode,
                            offset,
                            len,
                        })
                })
            })
            .collect(),
        OpKind::WriteBuffered | OpKind::WriteDirect | OpKind::WriteMmap => {
            let mode = match kind {
                OpKind::WriteBuffered => WriteMode::Buffered,
                OpKind::WriteDirect => WriteMode::Direct,
                _ => WriteMode::Mmap,
            };
            files
                .iter()
                .flat_map(|f| {
                    bounds.write_patterns.iter().map(move |pattern| Op::Write {
                        path: f.clone(),
                        mode,
                        spec: WriteSpec::Pattern(*pattern),
                    })
                })
                .collect()
        }
        OpKind::Link => {
            // Symmetry pruning: linking foo<->bar is order-insensitive, so
            // only the lexicographically ordered pair is generated (§5.2).
            let mut ops = Vec::new();
            for (i, a) in files.iter().enumerate() {
                for b in files.iter().skip(i + 1) {
                    ops.push(Op::Link {
                        existing: a.clone(),
                        new: b.clone(),
                    });
                }
            }
            ops
        }
        OpKind::Symlink => {
            let mut ops = Vec::new();
            for (i, a) in files.iter().enumerate() {
                for b in files.iter().skip(i + 1) {
                    ops.push(Op::Symlink {
                        target: a.clone(),
                        linkpath: b.clone(),
                    });
                }
            }
            ops
        }
        OpKind::Rename => {
            let mut ops = Vec::new();
            for a in files {
                for b in files {
                    if a != b {
                        ops.push(Op::Rename {
                            from: a.clone(),
                            to: b.clone(),
                        });
                    }
                }
            }
            // Directory renames (A <-> B) are included too; several studied
            // bugs involve renaming directories.
            for a in dirs {
                for b in dirs {
                    if a != b
                        && !b3_vfs::path::is_ancestor(a, b)
                        && !b3_vfs::path::is_ancestor(b, a)
                    {
                        ops.push(Op::Rename {
                            from: a.clone(),
                            to: b.clone(),
                        });
                    }
                }
            }
            ops
        }
        OpKind::Mmap | OpKind::Msync | OpKind::Fsync | OpKind::Fdatasync | OpKind::Sync => {
            Vec::new()
        }
    }
}

/// Phase 2: all concrete operation sequences for a skeleton (the cartesian
/// product of per-position candidates). The lazy generator walks this
/// product with an odometer instead of materializing it; this function is
/// the reference implementation used by tests and small bounds.
pub fn phase2_parameters(skeleton: &[OpKind], bounds: &Bounds) -> Vec<Vec<Op>> {
    let candidates: Vec<Vec<Op>> = skeleton
        .iter()
        .map(|kind| phase2_candidates(*kind, bounds))
        .collect();
    if candidates.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let mut sequences: Vec<Vec<Op>> = vec![Vec::new()];
    for position in &candidates {
        let mut next = Vec::with_capacity(sequences.len() * position.len());
        for sequence in &sequences {
            for op in position {
                let mut extended = sequence.clone();
                extended.push(op.clone());
                next.push(extended);
            }
        }
        sequences = next;
    }
    sequences
}

/// The persistence-point options available after one core operation.
pub fn persistence_options(op: &Op, is_last: bool, bounds: &Bounds) -> Vec<Option<Op>> {
    let mut options: Vec<Option<Op>> = Vec::new();
    let choices = &bounds.persistence;
    if choices.fsync {
        if let Some(path) = op.paths().first() {
            options.push(Some(Op::Fsync {
                path: (*path).to_string(),
            }));
        }
    }
    if choices.fdatasync && is_last && op.kind().is_data_op() {
        if let Some(path) = op.paths().first() {
            options.push(Some(Op::Fdatasync {
                path: (*path).to_string(),
            }));
        }
    }
    if choices.sync {
        options.push(Some(Op::Sync));
    }
    if !is_last && choices.allow_none {
        options.push(None);
    }
    if options.is_empty() {
        // Every workload must end with a persistence point.
        options.push(Some(Op::Sync));
    }
    options
}

/// Phase 3: interleaves the core sequence with every allowed combination of
/// persistence points, always ending with one.
pub fn phase3_persistence(core: &[Op], bounds: &Bounds) -> Vec<Vec<Op>> {
    let per_position: Vec<Vec<Option<Op>>> = core
        .iter()
        .enumerate()
        .map(|(i, op)| persistence_options(op, i + 1 == core.len(), bounds))
        .collect();

    let mut combos: Vec<Vec<Option<Op>>> = vec![Vec::new()];
    for options in &per_position {
        let mut next = Vec::with_capacity(combos.len() * options.len());
        for combo in &combos {
            for option in options {
                let mut extended = combo.clone();
                extended.push(option.clone());
                next.push(extended);
            }
        }
        combos = next;
    }

    combos
        .into_iter()
        .map(|combo| {
            let mut ops = Vec::with_capacity(core.len() * 2);
            for (op, persistence) in core.iter().zip(combo) {
                ops.push(op.clone());
                if let Some(p) = persistence {
                    ops.push(p);
                }
            }
            ops
        })
        .collect()
}

/// Phase 4: computes the dependency prefix for a core+persistence sequence
/// (and rejects sequences that can never execute). Returns the finished
/// workload.
pub fn phase4_dependencies(name: &str, ops: Vec<Op>, bounds: &Bounds) -> Option<Workload> {
    match SimState::plan(&ops, &bounds.files) {
        SimOutcome::Valid { setup } => Some(Workload::with_setup(name, setup, ops)),
        SimOutcome::Invalid(_) => None,
    }
}

/// Returns the directories that should exist before a workload touches the
/// given path (used by callers that want to pre-create the standard file
/// set instead of relying on per-workload dependencies).
pub fn required_dirs(path: &str) -> Vec<String> {
    let mut dirs = Vec::new();
    let mut current = parent(path).unwrap_or_default();
    while !current.is_empty() {
        dirs.push(current.clone());
        current = parent(&current).unwrap_or_default();
    }
    dirs.reverse();
    dirs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase1_counts_are_exponential() {
        let bounds = Bounds::paper_seq2();
        assert_eq!(phase1_skeletons(&bounds).len(), 14 * 14);
        let seq3 = Bounds::paper_seq3_metadata();
        assert_eq!(phase1_skeletons(&seq3).len(), 4 * 4 * 4);
    }

    #[test]
    fn phase2_link_prunes_symmetry() {
        let bounds = Bounds::paper_seq1();
        let links = phase2_candidates(OpKind::Link, &bounds);
        // 6 files -> C(6,2) = 15 ordered-once pairs.
        assert_eq!(links.len(), 15);
        assert!(!links.contains(&Op::Link {
            existing: "bar".into(),
            new: "foo".into()
        }));
        assert!(links.contains(&Op::Link {
            existing: "foo".into(),
            new: "bar".into()
        }));
    }

    #[test]
    fn phase2_rename_keeps_direction() {
        let bounds = Bounds::paper_seq1();
        let renames = phase2_candidates(OpKind::Rename, &bounds);
        assert!(renames.contains(&Op::Rename {
            from: "foo".into(),
            to: "bar".into()
        }));
        assert!(renames.contains(&Op::Rename {
            from: "bar".into(),
            to: "foo".into()
        }));
        // file pairs (6*5) + directory pairs (2).
        assert_eq!(renames.len(), 32);
    }

    #[test]
    fn phase3_always_ends_with_persistence() {
        let bounds = Bounds::paper_seq2();
        let core = vec![
            Op::Creat { path: "foo".into() },
            Op::Link {
                existing: "foo".into(),
                new: "bar".into(),
            },
        ];
        let expansions = phase3_persistence(&core, &bounds);
        assert!(!expansions.is_empty());
        for ops in &expansions {
            assert!(ops.last().unwrap().is_persistence_point());
            let core_ops: Vec<&Op> = ops.iter().filter(|o| !o.is_persistence_point()).collect();
            assert_eq!(core_ops.len(), 2);
        }
        // First op has fsync/sync/none = 3 options, last has fsync/sync = 2.
        assert_eq!(expansions.len(), 6);
    }

    #[test]
    fn figure4_example_emerges_from_the_phases() {
        // The paper's Figure 4 walks a seq-2 rename+link workload through
        // the four phases; verify the exact final workload is generated.
        let bounds = Bounds::paper_seq2();
        let core = vec![
            Op::Rename {
                from: "A/foo".into(),
                to: "B/bar".into(),
            },
            Op::Link {
                existing: "B/bar".into(),
                new: "A/bar".into(),
            },
        ];
        let with_persistence = phase3_persistence(&core, &bounds);
        let target: Vec<Op> = vec![
            Op::Rename {
                from: "A/foo".into(),
                to: "B/bar".into(),
            },
            Op::Sync,
            Op::Link {
                existing: "B/bar".into(),
                new: "A/bar".into(),
            },
            Op::Fsync {
                path: "A/bar".into(),
            },
        ];
        // Note: phase 3 attaches fsync to the first path of the operation,
        // which for link(B/bar, A/bar) is B/bar; the Figure 4 variant that
        // fsyncs A/bar is covered because A/bar is the link's second path —
        // accept either in this check.
        let found = with_persistence.iter().any(|ops| {
            ops.len() == 4
                && ops[0] == target[0]
                && ops[1] == Op::Sync
                && ops[2] == target[2]
                && matches!(&ops[3], Op::Fsync { path } if path == "B/bar" || path == "A/bar")
        });
        assert!(found, "Figure 4's workload shape must be generated");

        let workload = phase4_dependencies("fig4", target, &bounds).expect("valid");
        assert_eq!(
            workload.setup,
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into()
                },
                Op::Mkdir { path: "B".into() },
            ]
        );
    }

    #[test]
    fn phase4_rejects_impossible_sequences() {
        let bounds = Bounds::paper_seq2();
        let ops = vec![
            Op::Creat { path: "foo".into() },
            Op::Creat { path: "bar".into() },
            Op::Link {
                existing: "foo".into(),
                new: "bar".into(),
            },
            Op::Sync,
        ];
        assert!(phase4_dependencies("bad", ops, &bounds).is_none());
    }

    #[test]
    fn required_dirs_lists_ancestors() {
        assert_eq!(required_dirs("A/C/foo"), vec!["A", "A/C"]);
        assert!(required_dirs("foo").is_empty());
    }
}
