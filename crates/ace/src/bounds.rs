//! The bounds that make exhaustive workload generation tractable.
//!
//! Table 3 of the paper lists the concrete values ACE uses for each B3
//! bound; [`Bounds`] carries the same knobs plus the presets for each of the
//! workload sets of Table 4 (`seq-1`, `seq-2`, `seq-3-data`,
//! `seq-3-metadata`, `seq-3-nested`) and the beyond-paper `seq-4-metadata`
//! set that representative pruning ([`crate::canon`]) makes tractable.

use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::workload::{FallocMode, FileSet, OpKind, WritePattern};

/// Which persistence operations phase 3 may append after a core operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistenceChoices {
    /// Allow `fsync` of a file/directory touched by the preceding operation.
    pub fsync: bool,
    /// Allow `fdatasync` of a file touched by the preceding data operation.
    pub fdatasync: bool,
    /// Allow the global `sync`.
    pub sync: bool,
    /// Allow leaving an operation without a persistence point (never applied
    /// to the final operation).
    pub allow_none: bool,
}

impl Default for PersistenceChoices {
    fn default() -> Self {
        PersistenceChoices {
            fsync: true,
            fdatasync: true,
            sync: true,
            allow_none: true,
        }
    }
}

/// The named workload sets of Table 4.
///
/// Each preset resolves to a full [`Bounds`] via [`SequencePreset::bounds`]:
///
/// ```
/// use b3_ace::SequencePreset;
///
/// for preset in SequencePreset::ALL {
///     let bounds = preset.bounds();
///     assert!(bounds.name_prefix.starts_with(preset.name()));
/// }
/// assert_eq!(SequencePreset::Seq2.bounds().seq_len, 2);
/// assert_eq!(SequencePreset::Seq3Nested.bounds().files.max_depth(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequencePreset {
    /// Single-operation workloads over all 14 operations.
    Seq1,
    /// Two-operation workloads over all 14 operations.
    Seq2,
    /// Three-operation workloads focused on data operations.
    Seq3Data,
    /// Three-operation workloads focused on metadata operations.
    Seq3Metadata,
    /// Three-operation metadata workloads with a directory at depth three.
    Seq3Nested,
    /// Four-operation metadata workloads — beyond the paper's Table 4,
    /// reachable only with representative pruning (`b3_ace::canon`).
    Seq4Metadata,
}

impl SequencePreset {
    /// All presets, in the order Table 4 lists them.
    pub const ALL: [SequencePreset; 6] = [
        SequencePreset::Seq1,
        SequencePreset::Seq2,
        SequencePreset::Seq3Data,
        SequencePreset::Seq3Metadata,
        SequencePreset::Seq3Nested,
        SequencePreset::Seq4Metadata,
    ];

    /// The name Table 4 uses for this preset.
    pub fn name(&self) -> &'static str {
        match self {
            SequencePreset::Seq1 => "seq-1",
            SequencePreset::Seq2 => "seq-2",
            SequencePreset::Seq3Data => "seq-3-data",
            SequencePreset::Seq3Metadata => "seq-3-metadata",
            SequencePreset::Seq3Nested => "seq-3-nested",
            SequencePreset::Seq4Metadata => "seq-4-metadata",
        }
    }

    /// The bounds for this preset.
    pub fn bounds(&self) -> Bounds {
        match self {
            SequencePreset::Seq1 => Bounds::paper_seq1(),
            SequencePreset::Seq2 => Bounds::paper_seq2(),
            SequencePreset::Seq3Data => Bounds::paper_seq3_data(),
            SequencePreset::Seq3Metadata => Bounds::paper_seq3_metadata(),
            SequencePreset::Seq3Nested => Bounds::paper_seq3_nested(),
            SequencePreset::Seq4Metadata => Bounds::paper_seq4_metadata(),
        }
    }
}

/// The bounds ACE explores exhaustively.
///
/// Start from a paper preset (or [`Bounds::tiny`] for tests) and narrow or
/// relax individual knobs:
///
/// ```
/// use b3_ace::{generate_all, Bounds};
/// use b3_vfs::workload::OpKind;
///
/// // The paper's seq-1 bound: every one of the 14 operations, once.
/// let seq1 = Bounds::paper_seq1();
/// assert_eq!((seq1.seq_len, seq1.ops.len()), (1, 14));
///
/// // Narrow the operation set: only link and rename skeletons remain.
/// let narrowed = seq1.with_ops(vec![OpKind::Link, OpKind::Rename]);
/// assert!(generate_all(&narrowed)
///     .iter()
///     .all(|w| w.skeleton_string() == "link" || w.skeleton_string() == "rename"));
///
/// // Relax the file-set bound with a depth-3 nested directory (§5.2).
/// let relaxed = Bounds::paper_seq3_metadata().with_nested_files();
/// assert_eq!(relaxed.files.max_depth(), 3);
/// assert_eq!(relaxed.name_prefix, "seq-3-metadata-relaxed");
/// ```
///
/// Disabling persistence choices shrinks phase 3's alternatives; the last
/// operation always keeps at least one persistence point so no generated
/// workload is equivalent to a shorter one:
///
/// ```
/// use b3_ace::{generate_all, Bounds, PersistenceChoices};
///
/// let mut bounds = Bounds::tiny();
/// bounds.persistence = PersistenceChoices {
///     fsync: false,
///     fdatasync: false,
///     sync: true,
///     allow_none: true,
/// };
/// for workload in generate_all(&bounds) {
///     assert!(workload.ends_with_persistence_point(), "{workload}");
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Workload name prefix (e.g. `"seq-2"`).
    pub name_prefix: String,
    /// Number of core operations per workload (the sequence length).
    pub seq_len: usize,
    /// The operation kinds phase 1 may choose from.
    pub ops: Vec<OpKind>,
    /// The files and directories phase 2 may use as arguments.
    pub files: FileSet,
    /// Write patterns available to data operations.
    pub write_patterns: Vec<WritePattern>,
    /// `fallocate` modes available to `falloc` operations.
    pub falloc_modes: Vec<FallocMode>,
    /// Persistence-point choices for phase 3.
    pub persistence: PersistenceChoices,
}

impl Bounds {
    /// The 14-operation set used by the paper's seq-1 and seq-2 runs.
    pub fn paper_ops() -> Vec<OpKind> {
        OpKind::ACE_CORE_OPS.to_vec()
    }

    /// seq-1: every operation once, the paper reports 300 workloads.
    pub fn paper_seq1() -> Bounds {
        Bounds {
            name_prefix: "seq-1".into(),
            seq_len: 1,
            ops: Self::paper_ops(),
            files: FileSet::paper_default(),
            write_patterns: vec![
                WritePattern::Append,
                WritePattern::OverwriteStart,
                WritePattern::OverwriteMiddle,
                WritePattern::OverwriteEnd,
            ],
            falloc_modes: vec![
                FallocMode::Allocate,
                FallocMode::KeepSize,
                FallocMode::ZeroRange,
                FallocMode::ZeroRangeKeepSize,
                FallocMode::PunchHole,
            ],
            persistence: PersistenceChoices::default(),
        }
    }

    /// seq-2: two core operations, 14-operation set.
    pub fn paper_seq2() -> Bounds {
        Bounds {
            name_prefix: "seq-2".into(),
            seq_len: 2,
            ..Bounds::paper_seq1()
        }
    }

    /// seq-3-data: three core operations focused on data operations
    /// (buffered write, mmap write, direct write, fallocate). The study
    /// found data bugs come from *overlapping* operations on the same file,
    /// so the file set is narrowed to two files — which is also what keeps
    /// the workload count in the paper's 120K ballpark.
    pub fn paper_seq3_data() -> Bounds {
        Bounds {
            name_prefix: "seq-3-data".into(),
            seq_len: 3,
            ops: vec![
                OpKind::WriteBuffered,
                OpKind::WriteMmap,
                OpKind::WriteDirect,
                OpKind::Falloc,
            ],
            files: FileSet::new(vec!["A".into()], vec!["foo".into(), "A/foo".into()]),
            ..Bounds::paper_seq1()
        }
    }

    /// seq-3-metadata: three core operations focused on metadata operations
    /// (buffered write, link, unlink, rename). Writes in this set exist to
    /// interleave with the metadata operations, so a single append pattern
    /// suffices — keeping the space near the paper's 1.5M workloads.
    pub fn paper_seq3_metadata() -> Bounds {
        Bounds {
            name_prefix: "seq-3-metadata".into(),
            seq_len: 3,
            ops: vec![
                OpKind::WriteBuffered,
                OpKind::Link,
                OpKind::Unlink,
                OpKind::Rename,
            ],
            write_patterns: vec![WritePattern::Append],
            ..Bounds::paper_seq1()
        }
    }

    /// seq-4-metadata: the seq-3-metadata operation set stretched to four
    /// core operations — a space the paper never enumerated (~688M
    /// candidates). Only tractable under representative pruning
    /// (`b3_ace::canon` + the harness's Representative/Audit sweep modes),
    /// which is exactly why it exists.
    pub fn paper_seq4_metadata() -> Bounds {
        Bounds {
            name_prefix: "seq-4-metadata".into(),
            seq_len: 4,
            ..Bounds::paper_seq3_metadata()
        }
    }

    /// seq-3-nested: link and rename over a file set with a depth-3
    /// directory.
    pub fn paper_seq3_nested() -> Bounds {
        Bounds {
            name_prefix: "seq-3-nested".into(),
            seq_len: 3,
            ops: vec![OpKind::Link, OpKind::Rename],
            files: FileSet::nested(),
            ..Bounds::paper_seq1()
        }
    }

    /// Relaxes the file-set bound by adding the nested directory (the §5.2
    /// "running ACE with relaxed bounds" discussion: one extra nested
    /// directory grows the seq-3 workload count by roughly 2.5×).
    pub fn with_nested_files(mut self) -> Bounds {
        self.files = FileSet::nested();
        self.name_prefix = format!("{}-relaxed", self.name_prefix);
        self
    }

    /// Restricts the operation set (the paper's "user may supply bounds such
    /// as requiring only a subset of file-system operations be used").
    pub fn with_ops(mut self, ops: Vec<OpKind>) -> Bounds {
        self.ops = ops;
        self
    }

    /// A small bounds configuration for unit tests and examples.
    pub fn tiny() -> Bounds {
        Bounds {
            name_prefix: "tiny".into(),
            seq_len: 1,
            ops: vec![OpKind::Creat, OpKind::Link, OpKind::Rename],
            files: FileSet::minimal(),
            write_patterns: vec![WritePattern::Append],
            falloc_modes: vec![FallocMode::KeepSize],
            persistence: PersistenceChoices {
                fdatasync: false,
                ..PersistenceChoices::default()
            },
        }
    }

    /// Serializes the bounds with the workspace codec, so a sweep
    /// coordinator can ship the exact space definition to worker processes
    /// (or machines) and every worker re-derives the same enumeration.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name_prefix);
        enc.put_u64(self.seq_len as u64);
        enc.put_u64(self.ops.len() as u64);
        for op in &self.ops {
            enc.put_str(op.as_str());
        }
        enc.put_u64(self.files.dirs().len() as u64);
        for dir in self.files.dirs() {
            enc.put_str(dir);
        }
        enc.put_u64(self.files.files().len() as u64);
        for file in self.files.files() {
            enc.put_str(file);
        }
        enc.put_u64(self.write_patterns.len() as u64);
        for pattern in &self.write_patterns {
            enc.put_str(pattern.as_str());
        }
        enc.put_u64(self.falloc_modes.len() as u64);
        for mode in &self.falloc_modes {
            enc.put_str(mode.as_str());
        }
        enc.put_bool(self.persistence.fsync);
        enc.put_bool(self.persistence.fdatasync);
        enc.put_bool(self.persistence.sync);
        enc.put_bool(self.persistence.allow_none);
    }

    /// Deserializes bounds produced by [`Bounds::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> FsResult<Bounds> {
        fn parse_with<T>(
            dec: &mut Decoder<'_>,
            what: &str,
            parse: impl Fn(&str) -> Option<T>,
        ) -> FsResult<Vec<T>> {
            let count = dec.get_u64()? as usize;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let name = dec.get_str()?;
                items.push(
                    parse(&name)
                        .ok_or_else(|| FsError::Corrupted(format!("unknown {what} {name:?}")))?,
                );
            }
            Ok(items)
        }

        let name_prefix = dec.get_str()?;
        let seq_len = dec.get_u64()? as usize;
        let ops = parse_with(dec, "operation", OpKind::parse)?;
        let dirs = parse_with(dec, "directory", |s| Some(s.to_string()))?;
        let files = parse_with(dec, "file", |s| Some(s.to_string()))?;
        let write_patterns = parse_with(dec, "write pattern", WritePattern::parse)?;
        let falloc_modes = parse_with(dec, "falloc mode", FallocMode::parse)?;
        let persistence = PersistenceChoices {
            fsync: dec.get_bool()?,
            fdatasync: dec.get_bool()?,
            sync: dec.get_bool()?,
            allow_none: dec.get_bool()?,
        };
        Ok(Bounds {
            name_prefix,
            seq_len,
            ops,
            files: FileSet::new(dirs, files),
            write_patterns,
            falloc_modes,
            persistence,
        })
    }

    /// Describes the bounds in the format of Table 3.
    pub fn describe(&self) -> String {
        format!(
            "sequence length {}; {} operations; {} files in {} directories (max depth {}); \
             {} write patterns; {} falloc modes",
            self.seq_len,
            self.ops.len(),
            self.files.num_files(),
            self.files.num_dirs(),
            self.files.max_depth(),
            self.write_patterns.len(),
            self.falloc_modes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_seq1_uses_all_14_ops() {
        let bounds = Bounds::paper_seq1();
        assert_eq!(bounds.ops.len(), 14);
        assert_eq!(bounds.seq_len, 1);
        assert_eq!(bounds.files.max_depth(), 2);
    }

    #[test]
    fn presets_cover_table4() {
        // Table 4's five sets plus the beyond-paper seq-4-metadata set.
        assert_eq!(SequencePreset::ALL.len(), 6);
        assert_eq!(SequencePreset::Seq4Metadata.bounds().seq_len, 4);
        assert_eq!(SequencePreset::Seq4Metadata.name(), "seq-4-metadata");
        assert_eq!(SequencePreset::Seq3Nested.bounds().files.max_depth(), 3);
        assert_eq!(SequencePreset::Seq3Metadata.bounds().ops.len(), 4);
        assert_eq!(SequencePreset::Seq2.name(), "seq-2");
    }

    #[test]
    fn relaxing_bounds_changes_file_set() {
        let relaxed = Bounds::paper_seq3_metadata().with_nested_files();
        assert_eq!(relaxed.files.max_depth(), 3);
        assert!(relaxed.name_prefix.contains("relaxed"));
    }

    #[test]
    fn bounds_round_trip_through_the_codec() {
        let mut narrowed = Bounds::paper_seq3_metadata().with_nested_files();
        narrowed.persistence.fdatasync = false;
        for bounds in [
            Bounds::tiny(),
            Bounds::paper_seq1(),
            Bounds::paper_seq2(),
            Bounds::paper_seq3_data(),
            narrowed,
        ] {
            let mut enc = Encoder::new();
            bounds.encode(&mut enc);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            let decoded = Bounds::decode(&mut dec).unwrap();
            assert!(dec.is_exhausted());
            assert_eq!(decoded, bounds);
        }
    }

    #[test]
    fn bounds_decode_rejects_unknown_operation() {
        let mut enc = Encoder::new();
        enc.put_str("bad");
        enc.put_u64(1);
        enc.put_u64(1);
        enc.put_str("chmod");
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(Bounds::decode(&mut dec).is_err());
    }

    #[test]
    fn describe_mentions_the_key_bounds() {
        let text = Bounds::paper_seq2().describe();
        assert!(text.contains("sequence length 2"));
        assert!(text.contains("14 operations"));
    }
}
