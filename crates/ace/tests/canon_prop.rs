//! Property tests of the equivalence-class canonicalizer (`b3_ace::canon`)
//! against the streaming generator, over arbitrary bounds within the
//! paper's knobs:
//!
//! * **Key invariance**: a workload and its image under any file-set
//!   automorphism canonicalize to the same key — the defining property of
//!   an orbit invariant.
//! * **Entry-point determinism**: classification is a pure function of the
//!   op sequence, so a workload reached via `skip_to` (how a resumed or
//!   sharded sweep enters the space) classifies exactly as it does in a
//!   front-to-back enumeration, and the analytic candidate index agrees
//!   with the generator's workload names.
//! * **Shard stability**: the set of representatives chosen over any
//!   sharding of the space equals the unsharded set — no class gains or
//!   loses its representative because a shard boundary fell inside it.
//!   This is what lets distributed workers prune independently.

use std::collections::HashSet;

use proptest::prelude::*;

use b3_ace::{apply_path_map, forest_automorphisms, Bounds, Class, Classifier, WorkloadGenerator};
use b3_vfs::workload::{FileSet, OpKind};

const OP_POOL: [OpKind; 5] = [
    OpKind::Creat,
    OpKind::Link,
    OpKind::Unlink,
    OpKind::Rename,
    OpKind::WriteBuffered,
];

/// A non-empty subset of the operation pool, selected by bitmask.
fn ops_strategy() -> impl Strategy<Value = Vec<OpKind>> {
    (1u32..32).prop_map(|mask| {
        OP_POOL
            .iter()
            .enumerate()
            .filter(|(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, kind)| *kind)
            .collect()
    })
}

/// File sets spanning the symmetry spectrum: the paper's 16-automorphism
/// forest, a symmetry-free set, interchangeable root files, and
/// interchangeable sibling directories.
fn file_set_strategy() -> impl Strategy<Value = FileSet> {
    prop_oneof![
        Just(FileSet::paper_default()),
        Just(FileSet::minimal()),
        Just(FileSet::new(
            Vec::new(),
            vec!["foo".into(), "bar".into(), "baz".into()],
        )),
        Just(FileSet::new(
            vec!["A".into(), "B".into()],
            vec![
                "foo".into(),
                "A/foo".into(),
                "A/bar".into(),
                "B/foo".into(),
                "B/bar".into(),
            ],
        )),
    ]
}

fn bounds_strategy() -> impl Strategy<Value = Bounds> {
    (ops_strategy(), file_set_strategy(), 1usize..3).prop_map(|(ops, files, seq_len)| {
        let mut bounds = Bounds::tiny().with_ops(ops);
        bounds.files = files;
        bounds.seq_len = seq_len;
        bounds
    })
}

/// Caps the candidate space so a single proptest case stays fast; the
/// interesting structure (symmetry, shard edges) is size-independent.
fn small_space(bounds: &Bounds) -> bool {
    let total = WorkloadGenerator::estimate_candidates(bounds);
    total > 0 && total <= 4_000
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn keys_are_invariant_under_symmetry_rewrites(bounds in bounds_strategy()) {
        if !small_space(&bounds) {
            return Ok(());
        }
        let classifier = Classifier::new(&bounds);
        let maps = forest_automorphisms(&bounds.files);
        for workload in WorkloadGenerator::new(bounds.clone()).take(400) {
            let key = classifier.key(&workload.ops);
            for map in &maps {
                let image = apply_path_map(&workload.ops, map);
                prop_assert_eq!(
                    classifier.key(&image),
                    key.clone(),
                    "workload {} image under {:?}",
                    workload.name,
                    map
                );
            }
        }
    }

    #[test]
    fn classification_is_deterministic_across_entry_points(
        bounds in bounds_strategy(),
        numerator in 0u64..4,
    ) {
        if !small_space(&bounds) {
            return Ok(());
        }
        let classifier = Classifier::new(&bounds);
        // Classify the whole space front to back...
        let mut by_name = std::collections::HashMap::new();
        for workload in WorkloadGenerator::new(bounds.clone()) {
            by_name.insert(workload.name.clone(), classifier.classify(&workload.ops));
        }
        // ...then re-enter it mid-space the way a resumed sweep would and
        // demand identical classifications for every workload of the tail.
        let total = WorkloadGenerator::estimate_candidates(&bounds);
        let start = total * numerator / 4;
        let mut generator = WorkloadGenerator::new(bounds.clone());
        generator.skip_to(start);
        for workload in generator {
            prop_assert_eq!(
                &classifier.classify(&workload.ops),
                by_name.get(&workload.name).expect("tail ⊆ full enumeration"),
                "workload {} entered at candidate {}",
                workload.name,
                start
            );
        }
    }

    #[test]
    fn candidate_index_matches_generator_names(bounds in bounds_strategy()) {
        if !small_space(&bounds) {
            return Ok(());
        }
        let classifier = Classifier::new(&bounds);
        for workload in WorkloadGenerator::new(bounds.clone()) {
            let index = classifier
                .candidate_index(&workload.ops)
                .expect("generated workloads decompose");
            prop_assert_eq!(
                classifier.workload_name(index),
                workload.name.clone(),
                "analytic index {} must reconstruct the generator's name",
                index
            );
        }
    }

    #[test]
    fn representatives_are_stable_under_sharding(
        bounds in bounds_strategy(),
        num_shards in 1usize..8,
    ) {
        if !small_space(&bounds) {
            return Ok(());
        }
        let classifier = Classifier::new(&bounds);
        let representative_names = |workloads: Vec<b3_vfs::workload::Workload>| -> HashSet<String> {
            workloads
                .into_iter()
                .filter(|w| {
                    matches!(
                        classifier.classify(&w.ops),
                        None | Some(Class::Representative { .. })
                    )
                })
                .map(|w| w.name)
                .collect()
        };
        let unsharded =
            representative_names(WorkloadGenerator::new(bounds.clone()).collect());
        let mut sharded = HashSet::new();
        for shard in bounds.shards(num_shards) {
            let shard_reps = representative_names(
                WorkloadGenerator::for_shard(bounds.clone(), &shard).collect(),
            );
            for name in shard_reps {
                prop_assert!(
                    sharded.insert(name.clone()),
                    "representative {} claimed by two shards",
                    name
                );
            }
        }
        prop_assert_eq!(sharded, unsharded);
    }

    /// Every member's recorded representative is itself in the space,
    /// classifies as a representative, shares the member's key, and lives
    /// at the recorded candidate index — the contract Audit mode relies on
    /// when it re-materializes representatives from `(rep_ops, rep_index)`.
    #[test]
    fn members_point_at_canonical_representatives(bounds in bounds_strategy()) {
        if !small_space(&bounds) {
            return Ok(());
        }
        let classifier = Classifier::new(&bounds);
        for workload in WorkloadGenerator::new(bounds.clone()).take(400) {
            let Some(Class::Member { key, rep_ops, rep_index }) =
                classifier.classify(&workload.ops)
            else {
                continue;
            };
            match classifier.classify(&rep_ops) {
                Some(Class::Representative { key: rep_key }) => {
                    prop_assert_eq!(&rep_key, &key);
                }
                other => prop_assert!(false, "rep of {} classifies as {:?}", workload.name, other),
            }
            prop_assert_eq!(
                classifier.candidate_index(&rep_ops),
                Some(rep_index),
                "recorded rep_index must be the representative's own index"
            );
            let member_index = classifier
                .candidate_index(&workload.ops)
                .expect("members decompose");
            prop_assert!(
                rep_index < member_index,
                "the representative is the enumeration-first member \
                 ({} vs {})",
                rep_index,
                member_index
            );
        }
    }
}
