//! Property tests of the streaming, sharded generator against the eager
//! four-phase reference pipeline: for arbitrary bounds within the paper's
//! knobs, the streaming enumeration must equal the eager one workload for
//! workload, and any sharding of the space concatenated in order must equal
//! the unsharded enumeration — names included. This is what makes shards
//! safe to distribute: every worker can recreate exactly its slice.

use proptest::prelude::*;

use b3_ace::{
    phase1_skeletons, phase3_persistence, phase4_dependencies, Bounds, PersistenceChoices,
    WorkloadGenerator,
};
use b3_vfs::workload::{OpKind, Workload};

/// The eager PR-1 pipeline: materialize each phase's output in sequence.
fn eager_enumeration(bounds: &Bounds) -> Vec<Workload> {
    let mut workloads = Vec::new();
    let mut candidate = 0u64;
    for skeleton in phase1_skeletons(bounds) {
        for core in b3_ace::phase2_parameters(&skeleton, bounds) {
            for ops in phase3_persistence(&core, bounds) {
                candidate += 1;
                let name = format!("{}-{:07}", bounds.name_prefix, candidate);
                if let Some(workload) = phase4_dependencies(&name, ops, bounds) {
                    workloads.push(workload);
                }
            }
        }
    }
    workloads
}

const OP_POOL: [OpKind; 8] = [
    OpKind::Creat,
    OpKind::Mkdir,
    OpKind::Link,
    OpKind::Rename,
    OpKind::Unlink,
    OpKind::WriteBuffered,
    OpKind::Falloc,
    OpKind::SetXattr,
];

/// A non-empty subset of the operation pool, selected by bitmask.
fn ops_strategy() -> impl Strategy<Value = Vec<OpKind>> {
    (1u32..256).prop_map(|mask| {
        OP_POOL
            .iter()
            .enumerate()
            .filter(|(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, kind)| *kind)
            .collect()
    })
}

fn bounds_strategy() -> impl Strategy<Value = Bounds> {
    (ops_strategy(), 1usize..3, 0u8..4).prop_map(|(ops, seq_len, persistence_bits)| {
        let mut bounds = Bounds::tiny().with_ops(ops);
        bounds.seq_len = seq_len;
        bounds.persistence = PersistenceChoices {
            allow_none: persistence_bits & 1 != 0,
            fdatasync: persistence_bits & 2 != 0,
            ..PersistenceChoices::default()
        };
        bounds
    })
}

proptest! {
    #[test]
    fn streaming_generator_equals_eager_pipeline(bounds in bounds_strategy()) {
        let eager = eager_enumeration(&bounds);
        let streamed: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
        prop_assert_eq!(streamed, eager);
    }

    #[test]
    fn concatenated_shards_equal_unsharded_enumeration(
        bounds in bounds_strategy(),
        num_shards in 1usize..10,
    ) {
        let unsharded: Vec<Workload> = WorkloadGenerator::new(bounds.clone()).collect();
        let mut sharded = Vec::new();
        let mut covered = 0u64;
        for shard in bounds.shards(num_shards) {
            covered += shard.candidates();
            sharded.extend(WorkloadGenerator::for_shard(bounds.clone(), &shard));
        }
        prop_assert_eq!(covered, WorkloadGenerator::estimate_candidates(&bounds));
        prop_assert_eq!(sharded, unsharded);
    }

    #[test]
    fn skip_to_is_a_suffix_of_the_enumeration(
        bounds in bounds_strategy(),
        numerator in 0u64..5,
    ) {
        let total = WorkloadGenerator::estimate_candidates(&bounds);
        let start = total * numerator / 4;
        let mut generator = WorkloadGenerator::new(bounds.clone());
        generator.skip_to(start);
        let tail: Vec<Workload> = generator.collect();
        let full: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
        let expected: Vec<Workload> = full
            .into_iter()
            .filter(|w| {
                w.name
                    .rsplit('-')
                    .next()
                    .and_then(|n| n.parse::<u64>().ok())
                    .is_some_and(|index| index > start)
            })
            .collect();
        prop_assert_eq!(tail, expected);
    }
}
