//! The CowFs `FileSystem` implementation and its `FsSpec` factory.

use std::collections::HashMap;
use std::sync::Arc;

use b3_block::{BlockDevice, IoFlags, StateDelta};
use b3_vfs::diskfmt::{read_blob, write_blob, SuperBlock};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::fs::{FileSystem, FsSpec, GuaranteeProfile, WriteMode};
use b3_vfs::metadata::Metadata;
use b3_vfs::recover::{CommittedTreeCache, RecoverDelta};
use b3_vfs::tree::{InodeId, MemTree};
use b3_vfs::workload::FallocMode;
use b3_vfs::KernelEra;

use crate::bugs::CowBugs;
use crate::log::{
    replay, replay_from, LogItem, LogTree, Recorder, RecorderState, SyncKind, LOG_HEADER_LEN,
};

/// CowFs on-disk magic number.
pub const COWFS_MAGIC: u32 = 0x434f_5746; // "COWF"

/// A btrfs-like copy-on-write file system. See the crate-level documentation
/// for the persistence model.
pub struct CowFs {
    dev: Box<dyn BlockDevice>,
    sb: SuperBlock,
    bugs: CowBugs,
    /// Shared with the recovery session's caches: a freshly recovered view
    /// aliases the cached tree until the first mutation copies it
    /// ([`working_mut`](Self::working_mut)), so recover-and-snapshot — the
    /// hot path of a crash-state sweep — never deep-copies the tree.
    working: Arc<MemTree>,
    /// The last committed tree, or `None` when it is identical to `working`
    /// — the state right after every commit, and the terminal state of
    /// freshly recovered file systems, where materializing it would clone
    /// the whole tree only for it to be dropped unread.
    committed: Option<Arc<MemTree>>,
    log: LogTree,
    recorder_state: RecorderState,
}

impl CowFs {
    /// Formats a fresh CowFs onto `dev` with the bug set of the given kernel
    /// era, and returns it mounted.
    pub fn mkfs(mut dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<CowFs> {
        Self::mkfs_with_bugs(CowBugs::for_era(era), &mut dev)?;
        Self::mount_with_bugs(dev, CowBugs::for_era(era))
    }

    fn mkfs_with_bugs(_bugs: CowBugs, dev: &mut Box<dyn BlockDevice>) -> FsResult<()> {
        let tree = MemTree::new();
        let mut sb = SuperBlock::new(COWFS_MAGIC);
        let blob = write_blob(dev.as_mut(), &mut sb, &tree.encode(), IoFlags::META)?;
        sb.tree = blob;
        sb.dirty = false;
        sb.write_to(dev.as_mut())?;
        Ok(())
    }

    /// Mounts an existing image with an explicit bug set, running log replay
    /// if the image was not cleanly unmounted.
    pub fn mount_with_bugs(dev: Box<dyn BlockDevice>, bugs: CowBugs) -> FsResult<CowFs> {
        let sb = SuperBlock::read_from(dev.as_ref(), COWFS_MAGIC)?;
        let tree_bytes = read_blob(dev.as_ref(), sb.tree)?;
        if tree_bytes.is_empty() {
            return Err(FsError::Unmountable("missing committed tree".into()));
        }
        let committed = MemTree::decode(&tree_bytes)
            .map_err(|e| FsError::Unmountable(format!("corrupt committed tree: {e}")))?;

        let needs_recovery = sb.log.is_present() || sb.dirty;
        let working = if sb.log.is_present() {
            let log_bytes = read_blob(dev.as_ref(), sb.log)?;
            let log = LogTree::decode(&log_bytes)?;
            replay(&committed, &log, &bugs)?
        } else {
            committed
        };

        let mut fs = CowFs {
            dev,
            sb,
            bugs,
            working: Arc::new(working),
            committed: None,
            log: LogTree::new(),
            recorder_state: RecorderState::default(),
        };
        if needs_recovery {
            // Recovery completes by committing the replayed state, exactly
            // like btrfs committing the transaction created during log
            // replay. A clean image needs no such write-back — mounting it
            // is read-only, so its committed tree blob stays byte-identical
            // to the formatted image's (which is what lets delta-based
            // recovery treat the shared base image as crash state zero).
            fs.commit()?;
        }
        Ok(fs)
    }

    /// Mounts an existing image with the bug set of the given kernel era.
    pub fn mount(dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<CowFs> {
        Self::mount_with_bugs(dev, CowBugs::for_era(era))
    }

    /// The active bug configuration.
    pub fn bugs(&self) -> &CowBugs {
        &self.bugs
    }

    /// Number of items currently in the fsync log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Current commit generation.
    pub fn generation(&self) -> u64 {
        self.sb.generation
    }

    /// The working tree, for mutation. Materializes `committed` first: once
    /// `working` diverges, "identical to `working`" stops being true. The
    /// `make_mut` is what copies a tree shared with a recovery session's
    /// caches before the first write lands on it.
    fn working_mut(&mut self) -> &mut MemTree {
        if self.committed.is_none() {
            self.committed = Some(self.working.clone());
        }
        Arc::make_mut(&mut self.working)
    }

    fn commit(&mut self) -> FsResult<()> {
        let bytes = self.working.encode();
        let blob = write_blob(self.dev.as_mut(), &mut self.sb, &bytes, IoFlags::META)?;
        self.sb.tree = blob;
        self.sb.log = b3_vfs::diskfmt::BlobRef::EMPTY;
        self.sb.generation += 1;
        self.sb.dirty = true;
        self.sb.write_to(self.dev.as_mut())?;
        // Post-commit, the committed tree IS the working tree.
        self.committed = None;
        self.log.clear();
        self.recorder_state.clear();
        Ok(())
    }

    fn persist(&mut self, path: &str, kind: SyncKind) -> FsResult<()> {
        let items = {
            let committed = self.committed.as_deref().unwrap_or(&self.working);
            let mut recorder = Recorder {
                working: &self.working,
                committed,
                bugs: &self.bugs,
                existing_log: &self.log,
                state: &mut self.recorder_state,
            };
            recorder.record_persist(path, kind)?
        };
        self.log.items.extend(items);
        let bytes = self.log.encode();
        let blob = write_blob(
            self.dev.as_mut(),
            &mut self.sb,
            &bytes,
            IoFlags::META | IoFlags::SYNC,
        )?;
        self.sb.log = blob;
        self.sb.dirty = true;
        self.sb.write_to(self.dev.as_mut())?;
        Ok(())
    }

    fn track_punch(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) {
        if mode == FallocMode::PunchHole {
            if let Ok(ino) = self.working.resolve(path) {
                self.recorder_state
                    .punched
                    .entry(ino)
                    .or_default()
                    .push((offset, len));
            }
        }
    }

    fn mark_mmap_dirty(&mut self, path: &str) {
        if let Ok(ino) = self.working.resolve(path) {
            self.recorder_state.mmap_clean.remove(&ino);
        }
    }
}

impl FileSystem for CowFs {
    fn fs_name(&self) -> &'static str {
        "cowfs"
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        self.working_mut().create_file(path).map(|_| ())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.working_mut().mkdir(path).map(|_| ())
    }

    fn mkfifo(&mut self, path: &str) -> FsResult<()> {
        self.working_mut().mkfifo(path).map(|_| ())
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> FsResult<()> {
        self.working_mut().symlink(target, linkpath).map(|_| ())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.working_mut().link(existing, new).map(|_| ())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.working_mut().unlink(path)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.working_mut().rmdir(path)
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.working_mut().rename(from, to)
    }

    fn write(&mut self, path: &str, offset: u64, data: &[u8], mode: WriteMode) -> FsResult<()> {
        if mode == WriteMode::Mmap {
            self.mark_mmap_dirty(path);
        }
        self.working_mut().write(path, offset, data)
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        self.working_mut().truncate(path, size)
    }

    fn fallocate(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) -> FsResult<()> {
        self.working_mut().fallocate(path, mode, offset, len)?;
        self.track_punch(path, mode, offset, len);
        Ok(())
    }

    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        self.working_mut().setxattr(path, name, value)
    }

    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        self.working_mut().removexattr(path, name)
    }

    fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        self.working.getxattr(path, name)
    }

    fn read(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.working.read(path, offset, len)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.working.readdir(path)
    }

    fn metadata(&self, path: &str) -> FsResult<Metadata> {
        self.working.metadata(path)
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        self.working.readlink(path)
    }

    fn fsync(&mut self, path: &str) -> FsResult<()> {
        self.persist(path, SyncKind::Fsync)
    }

    fn fdatasync(&mut self, path: &str) -> FsResult<()> {
        self.persist(path, SyncKind::Fdatasync)
    }

    fn msync(&mut self, path: &str, offset: u64, len: u64) -> FsResult<()> {
        self.persist(path, SyncKind::Msync { offset, len })
    }

    fn sync(&mut self) -> FsResult<()> {
        self.commit()
    }

    fn unmount(mut self: Box<Self>) -> FsResult<Box<dyn BlockDevice>> {
        self.commit()?;
        self.sb.dirty = false;
        self.sb.write_to(self.dev.as_mut())?;
        Ok(self.dev)
    }

    fn guarantees(&self) -> GuaranteeProfile {
        GuaranteeProfile::linux_default()
    }
}

/// Incremental recovery session for CowFs (see
/// [`b3_vfs::recover::RecoverDelta`]).
///
/// A CowFs mount is: decode the committed tree blob, replay the log tree
/// onto it, then commit the replayed state. The decode dominates, and the
/// committed tree rarely changes between adjacent crash states (it only
/// moves on a full commit), so the session memoizes it in a
/// [`CommittedTreeCache`] and re-decodes only when the state delta touches
/// the blob. Log replay still runs per state — the log is what actually
/// differs between crash states.
///
/// The session skips the physical commit write-back a real mount performs:
/// the write-back only re-serializes the already-recovered state, so the
/// *logical* view (what the AutoChecker compares) is identical, which debug
/// builds of CrashMonkey assert against a from-scratch mount.
/// The working tree a previous `recover` call produced, so the next crash
/// state only replays the log items recorded *since* it (adjacent crash
/// states of one workload share a committed tree and a log prefix).
struct ReplayedLogCache {
    /// Content stamp ([`CommittedTreeCache::last_stamp`]) of the committed
    /// tree this replay started from. The fold is only extendable when the
    /// current state resolves to the *same* stamp — i.e. a byte-identical
    /// committed tree — since replay is a fold over that base.
    tree_stamp: u64,
    /// The raw encoded log already folded into `working`. The next state's
    /// log extends it iff its items region starts with this one's, byte for
    /// byte (the encoding is append-only and deterministic — see
    /// [`LOG_HEADER_LEN`](crate::log::LOG_HEADER_LEN)), so a cheap byte
    /// compare replaces re-decoding and comparing the shared item prefix.
    log_bytes: Vec<u8>,
    /// Number of items in `log_bytes`.
    item_count: usize,
    /// True when any folded item was a dentry removal. The
    /// `replay_keeps_old_dentry_after_rename` quirk consults the *whole*
    /// log (including items after the one being replayed) when deciding
    /// whether a removal sticks, so a later log extension can retroactively
    /// flip a removal already folded in here — the recover path refuses the
    /// cached fold when that hazard is live (see `recover`).
    prefix_has_remove: bool,
    /// The recovered working tree after replaying those items, shared with
    /// the recovered `CowFs` views handed out for byte-identical logs.
    working: Arc<MemTree>,
}

fn has_dentry_remove(items: &[LogItem]) -> bool {
    items
        .iter()
        .any(|item| matches!(item, LogItem::DentryRemove { .. }))
}

/// Upper bound on retained [anchor](CowRecoverySession::anchors) folds; a
/// workload rarely commits more than a couple of distinct trees, so a
/// handful covers every stamp the neighbouring workloads will resolve to.
const MAX_ANCHORS: usize = 4;

struct CowRecoverySession {
    bugs: CowBugs,
    cache: CommittedTreeCache,
    /// The most recent fold — the chain tip. Crash states later in the same
    /// workload extend it with their new log suffix.
    replayed_last: Option<std::sync::Arc<ReplayedLogCache>>,
    /// The *shortest* fold seen per committed-tree stamp. Bounded workload
    /// generation varies the tail of the op sequence fastest, so the first
    /// log states of a long run of neighbouring workloads are byte-identical
    /// — each one hits the anchor its predecessor planted instead of
    /// replaying from scratch. Entries are shared with `replayed_last` via
    /// `Arc`, so keeping both costs no extra tree copies.
    anchors: Vec<std::sync::Arc<ReplayedLogCache>>,
    /// The base image whose committed tree is pinned in `cache`, kept alive
    /// so its layer pointer stays a valid identity witness.
    primed: Option<b3_block::DiskImage>,
}

impl RecoverDelta for CowRecoverySession {
    fn prime(&mut self, _spec: &dyn FsSpec, base: &b3_block::DiskImage) {
        // Delta chains from the previous run prove nothing about this one.
        // The replayed-log cache survives the boundary, though: its
        // validity is purely content-based (committed-tree stamp plus log
        // byte prefix), and adjacent workloads of a sweep share op
        // prefixes, so their early crash states often have byte-identical
        // logs over the same committed tree.
        self.cache.start_run();
        if self.primed.as_ref().is_some_and(|p| p.ptr_eq(base)) {
            return;
        }
        // New base: decode its committed tree once and pin it, so the first
        // crash state of every run replayed onto this base (whose delta is
        // relative to the base) can hit the cache too. All errors are
        // swallowed — priming is an optimization, and `recover` reports
        // mount failures of a broken base exactly as `mount` would.
        self.primed = None;
        let dev = b3_block::CowSnapshotDevice::new(base.clone());
        let Ok(sb) = SuperBlock::read_from(&dev, COWFS_MAGIC) else {
            return;
        };
        let Ok(tree_bytes) = read_blob(&dev, sb.tree) else {
            return;
        };
        if tree_bytes.is_empty() {
            return;
        }
        let Ok(tree) = MemTree::decode(&tree_bytes) else {
            return;
        };
        self.cache.pin(&sb, tree);
        self.primed = Some(base.clone());
    }

    fn recover(
        &mut self,
        _spec: &dyn FsSpec,
        dev: Box<dyn BlockDevice>,
        delta: Option<&StateDelta>,
    ) -> FsResult<Box<dyn FileSystem>> {
        let sb = SuperBlock::read_from(dev.as_ref(), COWFS_MAGIC)?;
        // Resolve the committed tree: delta-proven cache hit, byte-verified
        // revival of the cached entry, or a fresh decode (stored for next
        // time). All three leave the tree borrowable from the cache.
        if self.cache.lookup(&sb, delta).is_none() {
            // Identical decode (and error) path to `mount_with_bugs`.
            let tree_bytes = read_blob(dev.as_ref(), sb.tree)?;
            if tree_bytes.is_empty() {
                return Err(FsError::Unmountable("missing committed tree".into()));
            }
            if self.cache.verify(&sb, &tree_bytes).is_none() {
                let tree = MemTree::decode(&tree_bytes)
                    .map_err(|e| FsError::Unmountable(format!("corrupt committed tree: {e}")))?;
                self.cache.store(&sb, tree_bytes, tree);
            }
        }
        let tree_stamp = self.cache.last_stamp();
        let committed = self
            .cache
            .resolved_shared()
            .expect("a tree was just resolved");
        let working: Arc<MemTree> = if sb.log.is_present() {
            let log_bytes = read_blob(dev.as_ref(), sb.log)?;
            // Fold only the new log suffix onto a cached working tree when
            // this state's log extends an already-replayed one over the
            // same committed tree: the stamp pins the base, and the byte
            // compare below proves the item prefix is shared (replay is a
            // pure fold; see `replay_from`). Prefer the longest folded
            // prefix: the chain tip extends within a workload, the anchors
            // serve the first log states of neighbouring workloads.
            let extends = |cached: &ReplayedLogCache| {
                cached.tree_stamp == tree_stamp
                    && log_bytes.len() >= cached.log_bytes.len()
                    && log_bytes[LOG_HEADER_LEN..cached.log_bytes.len()]
                        == cached.log_bytes[LOG_HEADER_LEN..]
            };
            let cached = self
                .replayed_last
                .iter()
                .chain(self.anchors.iter())
                .filter(|cached| extends(cached))
                .max_by_key(|cached| cached.log_bytes.len())
                .cloned();
            // Two buggy replay paths read the *whole* log; with either
            // active a cache hit must still decode the full log (so suffix
            // items see every item) instead of decoding just the suffix.
            let needs_full_log = self.bugs.replay_keeps_old_dentry_after_rename
                || self.bugs.replay_resets_inode_allocator;
            let entry: Arc<ReplayedLogCache> = match cached {
                Some(cached) if !needs_full_log => {
                    let suffix = LogTree::decode_suffix(
                        &log_bytes,
                        cached.log_bytes.len(),
                        cached.item_count,
                    )?;
                    if suffix.items.is_empty() {
                        // Byte-identical log: the cached fold IS this
                        // state's recovery — no tree copy at all.
                        cached
                    } else {
                        let mut working = MemTree::clone(&cached.working);
                        replay_from(&mut working, committed, &suffix, 0, &self.bugs)?;
                        Arc::new(ReplayedLogCache {
                            tree_stamp,
                            item_count: cached.item_count + suffix.items.len(),
                            prefix_has_remove: cached.prefix_has_remove
                                || has_dentry_remove(&suffix.items),
                            log_bytes,
                            working: Arc::new(working),
                        })
                    }
                }
                Some(cached) => {
                    let log = LogTree::decode(&log_bytes)?;
                    if log.items.len() == cached.item_count {
                        // Byte-prefix plus equal item count: identical log.
                        cached
                    } else {
                        let start = cached.item_count;
                        // The rename quirk makes a removal's outcome depend
                        // on *later* log items (`has_add_for_child` scans
                        // the whole log), so a suffix add can retroactively
                        // flip a removal already folded into the cached
                        // tree. Refuse the cached fold when both sides of
                        // that hazard are present.
                        let removal_may_flip = self.bugs.replay_keeps_old_dentry_after_rename
                            && cached.prefix_has_remove
                            && log.items[start..]
                                .iter()
                                .any(|item| matches!(item, LogItem::DentryAdd { .. }));
                        let (mut working, start, prefix_has_remove) = if removal_may_flip {
                            (MemTree::clone(committed), 0, false)
                        } else {
                            (
                                MemTree::clone(&cached.working),
                                start,
                                cached.prefix_has_remove,
                            )
                        };
                        replay_from(&mut working, committed, &log, start, &self.bugs)?;
                        Arc::new(ReplayedLogCache {
                            tree_stamp,
                            item_count: log.items.len(),
                            prefix_has_remove: prefix_has_remove
                                || has_dentry_remove(&log.items[start..]),
                            log_bytes,
                            working: Arc::new(working),
                        })
                    }
                }
                None => {
                    let log = LogTree::decode(&log_bytes)?;
                    let mut working = MemTree::clone(committed);
                    replay_from(&mut working, committed, &log, 0, &self.bugs)?;
                    Arc::new(ReplayedLogCache {
                        tree_stamp,
                        item_count: log.items.len(),
                        prefix_has_remove: has_dentry_remove(&log.items),
                        log_bytes,
                        working: Arc::new(working),
                    })
                }
            };
            let working = entry.working.clone();
            self.replayed_last = Some(entry.clone());
            match self
                .anchors
                .iter_mut()
                .find(|anchor| anchor.tree_stamp == entry.tree_stamp)
            {
                // Keep the shortest fold per stamp: that is the one the
                // neighbouring workloads' first log states will extend.
                Some(anchor) => {
                    if entry.item_count <= anchor.item_count {
                        *anchor = entry;
                    }
                }
                None => {
                    if self.anchors.len() >= MAX_ANCHORS {
                        self.anchors.remove(0);
                    }
                    self.anchors.push(entry);
                }
            }
            working
        } else {
            committed.clone()
        };
        Ok(Box::new(CowFs {
            dev,
            sb,
            bugs: self.bugs,
            committed: None,
            working,
            log: LogTree::new(),
            recorder_state: RecorderState::default(),
        }))
    }

    fn is_incremental(&self) -> bool {
        true
    }
}

/// Factory for CowFs instances, parameterized by kernel era (or an explicit
/// bug set for targeted testing).
#[derive(Debug, Clone, Copy)]
pub struct CowFsSpec {
    bugs: CowBugs,
}

impl CowFsSpec {
    /// A spec building file systems with the bugs of the given kernel era.
    pub fn new(era: KernelEra) -> Self {
        CowFsSpec {
            bugs: CowBugs::for_era(era),
        }
    }

    /// A spec with an explicit bug set.
    pub fn with_bugs(bugs: CowBugs) -> Self {
        CowFsSpec { bugs }
    }

    /// A fully patched spec (no injected bugs).
    pub fn patched() -> Self {
        CowFsSpec {
            bugs: CowBugs::none(),
        }
    }

    /// The bug set this spec configures.
    pub fn bugs(&self) -> &CowBugs {
        &self.bugs
    }
}

impl FsSpec for CowFsSpec {
    fn name(&self) -> &'static str {
        "cowfs"
    }

    fn mkfs(&self, mut device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        CowFs::mkfs_with_bugs(self.bugs, &mut device)?;
        Ok(Box::new(CowFs::mount_with_bugs(device, self.bugs)?))
    }

    fn mount(&self, device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        Ok(Box::new(CowFs::mount_with_bugs(device, self.bugs)?))
    }

    fn recovery_session(&self) -> Box<dyn RecoverDelta + Send> {
        Box::new(CowRecoverySession {
            bugs: self.bugs,
            cache: CommittedTreeCache::new(),
            replayed_last: None,
            anchors: Vec::new(),
            primed: None,
        })
    }

    fn fsck(&self, device: &mut dyn BlockDevice) -> FsResult<String> {
        // A btrfs-check analogue: verify the committed tree decodes and
        // report (but do not repair) dangling entries and stale directory
        // sizes.
        let sb = SuperBlock::read_from(device, COWFS_MAGIC)?;
        let bytes = read_blob(device, sb.tree)?;
        let tree = MemTree::decode(&bytes)?;
        let mut problems: Vec<String> = Vec::new();
        let inos: HashMap<InodeId, bool> = tree.inodes().map(|i| (i.ino, i.is_dir())).collect();
        for inode in tree.inodes() {
            if inode.is_dir() {
                for (name, child) in &inode.entries {
                    if !inos.contains_key(child) {
                        problems.push(format!(
                            "dangling entry '{name}' in directory inode {}",
                            inode.ino
                        ));
                    }
                }
                let expected = inode.entries.len() as u64 * b3_vfs::tree::DIRENT_SIZE;
                if inode.dir_size != expected {
                    problems.push(format!(
                        "directory inode {} size {} does not match {} entries",
                        inode.ino,
                        inode.dir_size,
                        inode.entries.len()
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok("cowfs-check: no errors found".to_string())
        } else {
            Ok(format!("cowfs-check: {}", problems.join("; ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_block::RamDisk;
    use b3_vfs::exec::{apply_workload, Executor};
    use b3_vfs::snapshot::LogicalSnapshot;
    use b3_vfs::workload::{Op, Workload};

    fn fresh_fs(era: KernelEra) -> CowFs {
        CowFs::mkfs(Box::new(RamDisk::new(4096)), era).unwrap()
    }

    #[test]
    fn recovery_session_matches_remount_and_caches_the_committed_tree() {
        fn crashed_device() -> Box<dyn BlockDevice> {
            let mut fs = fresh_fs(KernelEra::Patched);
            fs.mkdir("A").unwrap();
            fs.create("A/foo").unwrap();
            fs.write("A/foo", 0, b"payload", WriteMode::Buffered)
                .unwrap();
            fs.fsync("A/foo").unwrap();
            fs.create("A/volatile").unwrap();
            fs.dev // crash: no clean unmount, log replay pending
        }
        let spec = CowFsSpec::patched();
        let baseline = spec.mount(crashed_device()).unwrap();
        let expected = LogicalSnapshot::capture(baseline.as_ref()).unwrap();

        let mut session = spec.recovery_session();
        assert!(session.is_incremental());
        let first = session.recover(&spec, crashed_device(), None).unwrap();
        assert_eq!(LogicalSnapshot::capture(first.as_ref()).unwrap(), expected);
        // An empty delta proves no block changed, so the cached committed
        // tree is reused — the logical view must still match.
        let empty = StateDelta::from_blocks(Vec::new());
        let second = session
            .recover(&spec, crashed_device(), Some(&empty))
            .unwrap();
        assert_eq!(LogicalSnapshot::capture(second.as_ref()).unwrap(), expected);
    }

    #[test]
    fn mkfs_and_basic_operations() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, b"hello world", WriteMode::Buffered)
            .unwrap();
        assert_eq!(fs.read_all("A/foo").unwrap(), b"hello world");
        assert_eq!(fs.readdir("A").unwrap(), vec!["foo"]);
        assert_eq!(fs.metadata("A/foo").unwrap().size, 11);
    }

    #[test]
    fn unsynced_changes_do_not_survive_remount() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.create("volatile").unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        assert!(
            !fs.exists("volatile"),
            "a file that was never persisted must not survive a crash"
        );
    }

    impl CowFs {
        /// Test helper: simulate a crash by dropping all in-memory state and
        /// handing back the raw device (no unmount, no commit).
        fn into_device_without_unmount(self: Box<Self>) -> Box<dyn BlockDevice> {
            self.dev
        }
    }

    #[test]
    fn synced_changes_survive_crash() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, &[3u8; 5000], WriteMode::Buffered)
            .unwrap();
        fs.sync().unwrap();
        fs.create("A/unsynced").unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().size, 5000);
        assert!(!fs.exists("A/unsynced"));
    }

    #[test]
    fn fsynced_file_survives_crash_on_patched_fs() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, &[9u8; 4096], WriteMode::Buffered)
            .unwrap();
        fs.fsync("A/foo").unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().size, 4096);
        assert_eq!(fs.read("A/foo", 0, 5).unwrap(), vec![9u8; 5]);
    }

    #[test]
    fn clean_unmount_persists_everything() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.mkdir("B").unwrap();
        fs.create("B/bar").unwrap();
        fs.setxattr("B/bar", "user.k", b"v").unwrap();
        let before = LogicalSnapshot::capture(&fs).unwrap();
        let dev = Box::new(fs).unmount().unwrap();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        let after = LogicalSnapshot::capture(&fs).unwrap();
        assert!(before.diff_all(&after).is_empty());
    }

    #[test]
    fn workload_execution_through_the_executor() {
        let mut fs = fresh_fs(KernelEra::Patched);
        let workload = Workload::with_setup(
            "demo",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Link {
                    existing: "A/foo".into(),
                    new: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/bar".into(),
                },
            ],
        );
        apply_workload(&mut fs, &workload).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().nlink, 2);
    }

    #[test]
    fn spec_round_trip_with_fsck() {
        let spec = CowFsSpec::patched();
        let mut fs = spec.mkfs(Box::new(RamDisk::new(2048))).unwrap();
        fs.mkdir("A").unwrap();
        fs.create("A/x").unwrap();
        let mut dev = fs.unmount().unwrap();
        let report = spec.fsck(dev.as_mut()).unwrap();
        assert!(report.contains("no errors"));
        let fs = spec.mount(dev).unwrap();
        assert!(fs.exists("A/x"));
    }

    #[test]
    fn buggy_era_loses_hard_link_data_end_to_end() {
        // Known workload 16 executed directly against the file system, with
        // a crash simulated by remounting the raw device.
        let mut fs = fresh_fs(KernelEra::V3_13);
        let mut exec = Executor::new();
        let workload = Workload::with_setup(
            "w16",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Sync,
                Op::Write {
                    path: "A/foo".into(),
                    mode: WriteMode::Buffered,
                    spec: b3_vfs::workload::WriteSpec::range(0, 16 * 1024),
                },
                Op::Link {
                    existing: "A/foo".into(),
                    new: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
            ],
        );
        exec.apply_all(&mut fs, &workload).unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::V3_13).unwrap();
        assert_eq!(
            fs.metadata("A/foo").unwrap().size,
            0,
            "kernel 3.13 era must exhibit the hard-link fsync data loss"
        );

        // The same workload on a patched file system keeps the data.
        let mut fs = fresh_fs(KernelEra::Patched);
        Executor::new().apply_all(&mut fs, &workload).unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().size, 16 * 1024);
    }
}
