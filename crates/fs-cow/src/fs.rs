//! The CowFs `FileSystem` implementation and its `FsSpec` factory.

use std::collections::HashMap;

use b3_block::{BlockDevice, IoFlags};
use b3_vfs::diskfmt::{read_blob, write_blob, SuperBlock};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::fs::{FileSystem, FsSpec, GuaranteeProfile, WriteMode};
use b3_vfs::metadata::Metadata;
use b3_vfs::tree::{InodeId, MemTree};
use b3_vfs::workload::FallocMode;
use b3_vfs::KernelEra;

use crate::bugs::CowBugs;
use crate::log::{replay, LogTree, Recorder, RecorderState, SyncKind};

/// CowFs on-disk magic number.
pub const COWFS_MAGIC: u32 = 0x434f_5746; // "COWF"

/// A btrfs-like copy-on-write file system. See the crate-level documentation
/// for the persistence model.
pub struct CowFs {
    dev: Box<dyn BlockDevice>,
    sb: SuperBlock,
    bugs: CowBugs,
    working: MemTree,
    committed: MemTree,
    log: LogTree,
    recorder_state: RecorderState,
}

impl CowFs {
    /// Formats a fresh CowFs onto `dev` with the bug set of the given kernel
    /// era, and returns it mounted.
    pub fn mkfs(mut dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<CowFs> {
        Self::mkfs_with_bugs(CowBugs::for_era(era), &mut dev)?;
        Self::mount_with_bugs(dev, CowBugs::for_era(era))
    }

    fn mkfs_with_bugs(_bugs: CowBugs, dev: &mut Box<dyn BlockDevice>) -> FsResult<()> {
        let tree = MemTree::new();
        let mut sb = SuperBlock::new(COWFS_MAGIC);
        let blob = write_blob(dev.as_mut(), &mut sb, &tree.encode(), IoFlags::META)?;
        sb.tree = blob;
        sb.dirty = false;
        sb.write_to(dev.as_mut())?;
        Ok(())
    }

    /// Mounts an existing image with an explicit bug set, running log replay
    /// if the image was not cleanly unmounted.
    pub fn mount_with_bugs(dev: Box<dyn BlockDevice>, bugs: CowBugs) -> FsResult<CowFs> {
        let sb = SuperBlock::read_from(dev.as_ref(), COWFS_MAGIC)?;
        let tree_bytes = read_blob(dev.as_ref(), sb.tree)?;
        if tree_bytes.is_empty() {
            return Err(FsError::Unmountable("missing committed tree".into()));
        }
        let committed = MemTree::decode(&tree_bytes)
            .map_err(|e| FsError::Unmountable(format!("corrupt committed tree: {e}")))?;

        let working = if sb.log.is_present() {
            let log_bytes = read_blob(dev.as_ref(), sb.log)?;
            let log = LogTree::decode(&log_bytes)?;
            replay(&committed, &log, &bugs)?
        } else {
            committed.clone()
        };

        let mut fs = CowFs {
            dev,
            sb,
            bugs,
            working,
            committed,
            log: LogTree::new(),
            recorder_state: RecorderState::default(),
        };
        // Recovery completes by committing the replayed state, exactly like
        // btrfs committing the transaction created during log replay.
        fs.commit()?;
        Ok(fs)
    }

    /// Mounts an existing image with the bug set of the given kernel era.
    pub fn mount(dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<CowFs> {
        Self::mount_with_bugs(dev, CowBugs::for_era(era))
    }

    /// The active bug configuration.
    pub fn bugs(&self) -> &CowBugs {
        &self.bugs
    }

    /// Number of items currently in the fsync log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Current commit generation.
    pub fn generation(&self) -> u64 {
        self.sb.generation
    }

    fn commit(&mut self) -> FsResult<()> {
        let bytes = self.working.encode();
        let blob = write_blob(self.dev.as_mut(), &mut self.sb, &bytes, IoFlags::META)?;
        self.sb.tree = blob;
        self.sb.log = b3_vfs::diskfmt::BlobRef::EMPTY;
        self.sb.generation += 1;
        self.sb.dirty = true;
        self.sb.write_to(self.dev.as_mut())?;
        self.committed = self.working.clone();
        self.log.clear();
        self.recorder_state.clear();
        Ok(())
    }

    fn persist(&mut self, path: &str, kind: SyncKind) -> FsResult<()> {
        let items = {
            let mut recorder = Recorder {
                working: &self.working,
                committed: &self.committed,
                bugs: &self.bugs,
                existing_log: &self.log,
                state: &mut self.recorder_state,
            };
            recorder.record_persist(path, kind)?
        };
        self.log.items.extend(items);
        let bytes = self.log.encode();
        let blob = write_blob(
            self.dev.as_mut(),
            &mut self.sb,
            &bytes,
            IoFlags::META | IoFlags::SYNC,
        )?;
        self.sb.log = blob;
        self.sb.dirty = true;
        self.sb.write_to(self.dev.as_mut())?;
        Ok(())
    }

    fn track_punch(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) {
        if mode == FallocMode::PunchHole {
            if let Ok(ino) = self.working.resolve(path) {
                self.recorder_state
                    .punched
                    .entry(ino)
                    .or_default()
                    .push((offset, len));
            }
        }
    }

    fn mark_mmap_dirty(&mut self, path: &str) {
        if let Ok(ino) = self.working.resolve(path) {
            self.recorder_state.mmap_clean.remove(&ino);
        }
    }
}

impl FileSystem for CowFs {
    fn fs_name(&self) -> &'static str {
        "cowfs"
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        self.working.create_file(path).map(|_| ())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.working.mkdir(path).map(|_| ())
    }

    fn mkfifo(&mut self, path: &str) -> FsResult<()> {
        self.working.mkfifo(path).map(|_| ())
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> FsResult<()> {
        self.working.symlink(target, linkpath).map(|_| ())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.working.link(existing, new).map(|_| ())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.working.unlink(path)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.working.rmdir(path)
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.working.rename(from, to)
    }

    fn write(&mut self, path: &str, offset: u64, data: &[u8], mode: WriteMode) -> FsResult<()> {
        if mode == WriteMode::Mmap {
            self.mark_mmap_dirty(path);
        }
        self.working.write(path, offset, data)
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        self.working.truncate(path, size)
    }

    fn fallocate(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) -> FsResult<()> {
        self.working.fallocate(path, mode, offset, len)?;
        self.track_punch(path, mode, offset, len);
        Ok(())
    }

    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        self.working.setxattr(path, name, value)
    }

    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        self.working.removexattr(path, name)
    }

    fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        self.working.getxattr(path, name)
    }

    fn read(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.working.read(path, offset, len)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.working.readdir(path)
    }

    fn metadata(&self, path: &str) -> FsResult<Metadata> {
        self.working.metadata(path)
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        self.working.readlink(path)
    }

    fn fsync(&mut self, path: &str) -> FsResult<()> {
        self.persist(path, SyncKind::Fsync)
    }

    fn fdatasync(&mut self, path: &str) -> FsResult<()> {
        self.persist(path, SyncKind::Fdatasync)
    }

    fn msync(&mut self, path: &str, offset: u64, len: u64) -> FsResult<()> {
        self.persist(path, SyncKind::Msync { offset, len })
    }

    fn sync(&mut self) -> FsResult<()> {
        self.commit()
    }

    fn unmount(mut self: Box<Self>) -> FsResult<Box<dyn BlockDevice>> {
        self.commit()?;
        self.sb.dirty = false;
        self.sb.write_to(self.dev.as_mut())?;
        Ok(self.dev)
    }

    fn guarantees(&self) -> GuaranteeProfile {
        GuaranteeProfile::linux_default()
    }
}

/// Factory for CowFs instances, parameterized by kernel era (or an explicit
/// bug set for targeted testing).
#[derive(Debug, Clone, Copy)]
pub struct CowFsSpec {
    bugs: CowBugs,
}

impl CowFsSpec {
    /// A spec building file systems with the bugs of the given kernel era.
    pub fn new(era: KernelEra) -> Self {
        CowFsSpec {
            bugs: CowBugs::for_era(era),
        }
    }

    /// A spec with an explicit bug set.
    pub fn with_bugs(bugs: CowBugs) -> Self {
        CowFsSpec { bugs }
    }

    /// A fully patched spec (no injected bugs).
    pub fn patched() -> Self {
        CowFsSpec {
            bugs: CowBugs::none(),
        }
    }

    /// The bug set this spec configures.
    pub fn bugs(&self) -> &CowBugs {
        &self.bugs
    }
}

impl FsSpec for CowFsSpec {
    fn name(&self) -> &'static str {
        "cowfs"
    }

    fn mkfs(&self, mut device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        CowFs::mkfs_with_bugs(self.bugs, &mut device)?;
        Ok(Box::new(CowFs::mount_with_bugs(device, self.bugs)?))
    }

    fn mount(&self, device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        Ok(Box::new(CowFs::mount_with_bugs(device, self.bugs)?))
    }

    fn fsck(&self, device: &mut dyn BlockDevice) -> FsResult<String> {
        // A btrfs-check analogue: verify the committed tree decodes and
        // report (but do not repair) dangling entries and stale directory
        // sizes.
        let sb = SuperBlock::read_from(device, COWFS_MAGIC)?;
        let bytes = read_blob(device, sb.tree)?;
        let tree = MemTree::decode(&bytes)?;
        let mut problems: Vec<String> = Vec::new();
        let inos: HashMap<InodeId, bool> = tree.inodes().map(|i| (i.ino, i.is_dir())).collect();
        for inode in tree.inodes() {
            if inode.is_dir() {
                for (name, child) in &inode.entries {
                    if !inos.contains_key(child) {
                        problems.push(format!(
                            "dangling entry '{name}' in directory inode {}",
                            inode.ino
                        ));
                    }
                }
                let expected = inode.entries.len() as u64 * b3_vfs::tree::DIRENT_SIZE;
                if inode.dir_size != expected {
                    problems.push(format!(
                        "directory inode {} size {} does not match {} entries",
                        inode.ino,
                        inode.dir_size,
                        inode.entries.len()
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok("cowfs-check: no errors found".to_string())
        } else {
            Ok(format!("cowfs-check: {}", problems.join("; ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_block::RamDisk;
    use b3_vfs::exec::{apply_workload, Executor};
    use b3_vfs::snapshot::LogicalSnapshot;
    use b3_vfs::workload::{Op, Workload};

    fn fresh_fs(era: KernelEra) -> CowFs {
        CowFs::mkfs(Box::new(RamDisk::new(4096)), era).unwrap()
    }

    #[test]
    fn mkfs_and_basic_operations() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, b"hello world", WriteMode::Buffered)
            .unwrap();
        assert_eq!(fs.read_all("A/foo").unwrap(), b"hello world");
        assert_eq!(fs.readdir("A").unwrap(), vec!["foo"]);
        assert_eq!(fs.metadata("A/foo").unwrap().size, 11);
    }

    #[test]
    fn unsynced_changes_do_not_survive_remount() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.create("volatile").unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        assert!(
            !fs.exists("volatile"),
            "a file that was never persisted must not survive a crash"
        );
    }

    impl CowFs {
        /// Test helper: simulate a crash by dropping all in-memory state and
        /// handing back the raw device (no unmount, no commit).
        fn into_device_without_unmount(self: Box<Self>) -> Box<dyn BlockDevice> {
            self.dev
        }
    }

    #[test]
    fn synced_changes_survive_crash() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, &[3u8; 5000], WriteMode::Buffered)
            .unwrap();
        fs.sync().unwrap();
        fs.create("A/unsynced").unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().size, 5000);
        assert!(!fs.exists("A/unsynced"));
    }

    #[test]
    fn fsynced_file_survives_crash_on_patched_fs() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, &[9u8; 4096], WriteMode::Buffered)
            .unwrap();
        fs.fsync("A/foo").unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().size, 4096);
        assert_eq!(fs.read("A/foo", 0, 5).unwrap(), vec![9u8; 5]);
    }

    #[test]
    fn clean_unmount_persists_everything() {
        let mut fs = fresh_fs(KernelEra::Patched);
        fs.mkdir("B").unwrap();
        fs.create("B/bar").unwrap();
        fs.setxattr("B/bar", "user.k", b"v").unwrap();
        let before = LogicalSnapshot::capture(&fs).unwrap();
        let dev = Box::new(fs).unmount().unwrap();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        let after = LogicalSnapshot::capture(&fs).unwrap();
        assert!(before.diff_all(&after).is_empty());
    }

    #[test]
    fn workload_execution_through_the_executor() {
        let mut fs = fresh_fs(KernelEra::Patched);
        let workload = Workload::with_setup(
            "demo",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Link {
                    existing: "A/foo".into(),
                    new: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/bar".into(),
                },
            ],
        );
        apply_workload(&mut fs, &workload).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().nlink, 2);
    }

    #[test]
    fn spec_round_trip_with_fsck() {
        let spec = CowFsSpec::patched();
        let mut fs = spec.mkfs(Box::new(RamDisk::new(2048))).unwrap();
        fs.mkdir("A").unwrap();
        fs.create("A/x").unwrap();
        let mut dev = fs.unmount().unwrap();
        let report = spec.fsck(dev.as_mut()).unwrap();
        assert!(report.contains("no errors"));
        let fs = spec.mount(dev).unwrap();
        assert!(fs.exists("A/x"));
    }

    #[test]
    fn buggy_era_loses_hard_link_data_end_to_end() {
        // Known workload 16 executed directly against the file system, with
        // a crash simulated by remounting the raw device.
        let mut fs = fresh_fs(KernelEra::V3_13);
        let mut exec = Executor::new();
        let workload = Workload::with_setup(
            "w16",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Sync,
                Op::Write {
                    path: "A/foo".into(),
                    mode: WriteMode::Buffered,
                    spec: b3_vfs::workload::WriteSpec::range(0, 16 * 1024),
                },
                Op::Link {
                    existing: "A/foo".into(),
                    new: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
            ],
        );
        exec.apply_all(&mut fs, &workload).unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::V3_13).unwrap();
        assert_eq!(
            fs.metadata("A/foo").unwrap().size,
            0,
            "kernel 3.13 era must exhibit the hard-link fsync data loss"
        );

        // The same workload on a patched file system keeps the data.
        let mut fs = fresh_fs(KernelEra::Patched);
        Executor::new().apply_all(&mut fs, &workload).unwrap();
        let dev = Box::new(fs).into_device_without_unmount();
        let fs = CowFs::mount(dev, KernelEra::Patched).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().size, 16 * 1024);
    }
}
