//! The catalogue of injectable CowFs crash-consistency bugs.
//!
//! Each flag corresponds to one distinct *mechanism* from the paper's btrfs
//! corpus (several reported workloads can share a mechanism, exactly as
//! several reported bugs shared a root cause in the real kernel). Flags are
//! era-gated: [`CowBugs::for_era`] enables exactly the bugs that were
//! unfixed in the given kernel release, so a `KernelEra::Patched` file
//! system has no injected bugs at all and `KernelEra::V4_16` (the paper's
//! evaluation kernel) has exactly the still-unfixed "new" bugs of Table 5.

use b3_vfs::KernelEra;

/// Which CowFs crash-consistency bugs are active.
///
/// The `Default` value has every bug disabled (a fully patched file system).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(clippy::struct_excessive_bools)]
pub struct CowBugs {
    // ----- inode / data logging bugs -------------------------------------------------
    /// fsync of a file that gained a hard link in the current transaction
    /// logs the *committed* (stale) inode size and contents, so the file
    /// recovers with size 0 / old data. (Known bug: "fsync data loss after
    /// adding hard link to inode", workload 16.)
    pub link_fsync_stale_inode: bool,

    /// fsync of a file whose link count is greater than one only logs data
    /// up to the committed size, losing appends. (Known bug: "fsync data
    /// loss after append write", workload 23.)
    pub append_after_link_stale_extent: bool,

    /// Blocks allocated beyond EOF with `fallocate(KEEP_SIZE)` are not
    /// logged by fsync and disappear after recovery. (New bug 8.)
    pub falloc_keep_size_not_logged: bool,

    /// Holes punched since the last commit are not logged: recovery restores
    /// the committed data for the punched range. (Known bugs: workloads 12
    /// and 17, hole punching not persisted.)
    pub punch_hole_not_logged: bool,

    /// fsync logs the union of committed and working xattrs, so xattrs
    /// removed in this transaction reappear after recovery. (Known bug:
    /// workload 18, "remove deleted xattrs on fsync log replay".)
    pub xattr_removal_not_logged: bool,

    /// A symlink logged through an fsync of its parent directory loses its
    /// target, recovering as an empty symlink. (Known bug: workload 10.)
    pub symlink_target_not_logged: bool,

    /// A ranged `msync` logs only the synced range *and* clears the whole
    /// file's dirty state, so a second ranged msync of a different range
    /// logs nothing. (Known bug: workload 14, "fsync data loss after a
    /// ranged fsync".)
    pub ranged_msync_clears_dirty: bool,

    // ----- name / dentry logging bugs -------------------------------------------------
    /// fsync of a file logs only the directory entry for the path that was
    /// fsynced; hard-link names added this transaction under other paths
    /// are not logged (and a second fsync of the same inode skips name
    /// logging entirely). (New bugs 5 and 7.)
    pub fsync_skips_other_names: bool,

    /// fsync of a file that was renamed in the current transaction fails to
    /// log the name change; the file recovers under its old name. (Known
    /// bugs: workloads 11 and 22; the file-rename half of new bug 4.)
    pub fsync_renamed_file_skips_new_name: bool,

    /// fsync of a renamed file logs, alongside the correct new name, a stale
    /// back-reference that replay instantiates as a *fresh* inode carrying
    /// the committed (pre-rename) contents under the old name. After
    /// `rename; fsync(new); crash`, recovery shows the old name as a
    /// **distinct** inode — so the same-inode rename-atomicity check stays
    /// silent and only an op-order-aware durable-rename check catches it.
    /// (ROADMAP "Rename-atomicity coverage"; corpus entry `ext-01`.)
    pub durable_rename_resurrects_old_inode: bool,

    /// When fsyncing a file created at a name that used to belong to a
    /// different (renamed-away) inode, the renamed inode's new location is
    /// not logged and the old file disappears entirely. (Known bug:
    /// workload 1, also reported against F2FS.)
    pub rename_source_not_logged: bool,

    /// fsync of a file also logs directory entries for *sibling* names
    /// created in the same directory during this transaction, without
    /// logging the sibling inodes — leaving entries whose link counts are
    /// wrong after replay and making the directory un-removable. (Known bug:
    /// workload 13, "stale directory entries after fsync log replay".)
    pub fsync_logs_sibling_dentries: bool,

    /// fsync of a directory logs entries for newly created child *files*
    /// but not the child inodes themselves, so the children are missing
    /// after recovery. (New bug 6.)
    pub dir_fsync_skips_new_files: bool,

    /// fsync of a directory does not log newly created child *directories*
    /// (nor anything under them). (New bug 3.)
    pub dir_fsync_skips_new_subdirs: bool,

    /// fsync of a directory fails to persist renames of files into or out of
    /// the directory's subtree performed in this transaction. (Known bugs:
    /// workloads 7, 8 and 20; the directory half of new bug 4.)
    pub dir_fsync_misses_renames: bool,

    /// When a rename replaces a name belonging to an already-logged inode,
    /// fsync of the directory logs the replacing entry but not the replacing
    /// inode, so *both* the old and the new file vanish — broken rename
    /// atomicity. (New bug 1.)
    pub rename_over_logged_skips_new_inode: bool,

    // ----- log replay bugs --------------------------------------------------------------
    /// Log replay increments the directory size for every dentry item even
    /// when the entry already exists, leaving the directory claiming a
    /// larger size than its entries and making it un-removable. (Known bugs:
    /// workloads 21 and 24, "fix directory recovery from fsync log".)
    pub replay_dup_dentry_double_count: bool,

    /// Log replay skips dentry *removals* for inodes with multiple hard
    /// links, resurrecting removed names with broken link counts and making
    /// the directory un-removable. (Known bugs: workloads 15 and 19.)
    pub replay_skips_dentry_removal_multilink: bool,

    /// Log replay does not remove the old name of a renamed entry when the
    /// new name appears in the same log, so the file is visible in both
    /// directories after recovery. (Known bug: workload 9; new bug 2.)
    pub replay_keeps_old_dentry_after_rename: bool,

    /// Log replay aborts when a logged dentry targets a name that exists in
    /// the committed tree with a different inode (the unlink+link /
    /// unlink+create name-reuse pattern), leaving the file system
    /// un-mountable. (Known bugs: Figure 1 / workloads 3 and 5.)
    pub name_reuse_breaks_replay: bool,

    /// Log replay restores the committed inode-allocator cursor, so the
    /// first creation after recovery collides with a replayed inode and the
    /// file system refuses to create new files. (Known bug: workload 6.)
    pub replay_resets_inode_allocator: bool,
}

/// One row of the era table: which flag, when the bug appeared, and when it
/// was fixed (`None` = still unfixed at the paper's evaluation kernel 4.16).
struct BugWindow {
    set: fn(&mut CowBugs, bool),
    introduced: KernelEra,
    fixed_in: Option<KernelEra>,
}

macro_rules! window {
    ($field:ident, $introduced:expr, $fixed:expr) => {
        BugWindow {
            set: |bugs, value| bugs.$field = value,
            introduced: $introduced,
            fixed_in: $fixed,
        }
    };
}

/// The era table. Known (previously reported) bugs were all fixed by the
/// kernel release following their report; the ten bugs CrashMonkey and ACE
/// found (Table 5) were still present in 4.16 and are only disabled for
/// [`KernelEra::Patched`].
fn bug_windows() -> Vec<BugWindow> {
    use KernelEra::*;
    vec![
        // --- previously reported (known) bugs -------------------------------
        window!(link_fsync_stale_inode, V3_12, Some(V4_1_1)),
        window!(append_after_link_stale_extent, V3_12, Some(V4_4)),
        window!(punch_hole_not_logged, V3_12, Some(V4_4)),
        window!(xattr_removal_not_logged, V3_12, Some(V4_1_1)),
        window!(symlink_target_not_logged, V3_12, Some(V4_15)),
        window!(ranged_msync_clears_dirty, V3_12, Some(V3_16)),
        window!(fsync_renamed_file_skips_new_name, V3_12, Some(V4_15)),
        window!(rename_source_not_logged, V3_12, Some(V4_15)),
        window!(fsync_logs_sibling_dentries, V3_12, Some(V4_4)),
        // This mechanism covers both previously-reported workloads (7, 8,
        // 20) and the still-unfixed "rename not persisted by fsync" new bug
        // 4 of Table 5, so its window never closes.
        window!(dir_fsync_misses_renames, V3_12, None),
        window!(replay_dup_dentry_double_count, V3_12, Some(V3_16)),
        window!(replay_skips_dentry_removal_multilink, V3_12, Some(V4_4)),
        window!(replay_keeps_old_dentry_after_rename, V3_12, Some(V4_15)),
        window!(name_reuse_breaks_replay, V3_12, Some(V4_16)),
        window!(replay_resets_inode_allocator, V3_12, Some(V4_16)),
        // --- new bugs found by CrashMonkey + ACE (Table 5) -------------------
        window!(rename_over_logged_skips_new_inode, V3_13, None), // new bug 1 (2014)
        window!(replay_keeps_old_dentry_after_rename, V4_15, None), // new bug 2 (2018) reuses the mechanism
        window!(dir_fsync_skips_new_subdirs, V3_13, None),          // new bug 3 (2014)
        window!(fsync_skips_other_names, V3_13, None),              // new bugs 5 & 7 (2014)
        window!(dir_fsync_skips_new_files, V3_16, None),            // new bug 6 (2014)
        window!(falloc_keep_size_not_logged, V3_13, None),          // new bug 8 (2014)
        // --- beyond the paper: durable-rename distinct-inode resurrection ----
        window!(durable_rename_resurrects_old_inode, V4_16, None),
    ]
}

impl CowBugs {
    /// No bugs at all (equivalent to `for_era(KernelEra::Patched)`).
    pub fn none() -> Self {
        CowBugs::default()
    }

    /// Every bug enabled (useful for adversarial testing of CrashMonkey).
    pub fn all() -> Self {
        let mut bugs = CowBugs::default();
        for window in bug_windows() {
            (window.set)(&mut bugs, true);
        }
        bugs
    }

    /// The bugs present in the given kernel era.
    pub fn for_era(era: KernelEra) -> Self {
        let mut bugs = CowBugs::default();
        for window in bug_windows() {
            if era.bug_present(window.introduced, window.fixed_in) {
                (window.set)(&mut bugs, true);
            }
        }
        bugs
    }

    /// Number of enabled bug flags.
    pub fn count_enabled(&self) -> usize {
        let CowBugs {
            link_fsync_stale_inode,
            append_after_link_stale_extent,
            falloc_keep_size_not_logged,
            punch_hole_not_logged,
            xattr_removal_not_logged,
            symlink_target_not_logged,
            ranged_msync_clears_dirty,
            fsync_skips_other_names,
            fsync_renamed_file_skips_new_name,
            durable_rename_resurrects_old_inode,
            rename_source_not_logged,
            fsync_logs_sibling_dentries,
            dir_fsync_skips_new_files,
            dir_fsync_skips_new_subdirs,
            dir_fsync_misses_renames,
            rename_over_logged_skips_new_inode,
            replay_dup_dentry_double_count,
            replay_skips_dentry_removal_multilink,
            replay_keeps_old_dentry_after_rename,
            name_reuse_breaks_replay,
            replay_resets_inode_allocator,
        } = *self;
        [
            link_fsync_stale_inode,
            append_after_link_stale_extent,
            falloc_keep_size_not_logged,
            punch_hole_not_logged,
            xattr_removal_not_logged,
            symlink_target_not_logged,
            ranged_msync_clears_dirty,
            fsync_skips_other_names,
            fsync_renamed_file_skips_new_name,
            durable_rename_resurrects_old_inode,
            rename_source_not_logged,
            fsync_logs_sibling_dentries,
            dir_fsync_skips_new_files,
            dir_fsync_skips_new_subdirs,
            dir_fsync_misses_renames,
            rename_over_logged_skips_new_inode,
            replay_dup_dentry_double_count,
            replay_skips_dentry_removal_multilink,
            replay_keeps_old_dentry_after_rename,
            name_reuse_breaks_replay,
            replay_resets_inode_allocator,
        ]
        .iter()
        .filter(|&&flag| flag)
        .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patched_era_has_no_bugs() {
        assert_eq!(CowBugs::for_era(KernelEra::Patched), CowBugs::none());
        assert_eq!(CowBugs::for_era(KernelEra::Patched).count_enabled(), 0);
    }

    #[test]
    fn evaluation_kernel_has_only_new_bugs() {
        let bugs = CowBugs::for_era(KernelEra::V4_16);
        // The new bugs of Table 5 are present…
        assert!(bugs.rename_over_logged_skips_new_inode);
        assert!(bugs.dir_fsync_skips_new_subdirs);
        assert!(bugs.dir_fsync_skips_new_files);
        assert!(bugs.fsync_skips_other_names);
        assert!(bugs.falloc_keep_size_not_logged);
        assert!(bugs.replay_keeps_old_dentry_after_rename);
        // …while long-fixed known bugs are not.
        assert!(!bugs.link_fsync_stale_inode);
        assert!(!bugs.ranged_msync_clears_dirty);
        assert!(!bugs.replay_dup_dentry_double_count);
    }

    #[test]
    fn old_kernels_have_more_bugs_than_new_ones() {
        let old = CowBugs::for_era(KernelEra::V3_13).count_enabled();
        let new = CowBugs::for_era(KernelEra::V4_16).count_enabled();
        assert!(old > new, "expected {old} > {new}");
    }

    #[test]
    fn known_bug_window_closes() {
        assert!(CowBugs::for_era(KernelEra::V3_13).replay_dup_dentry_double_count);
        assert!(!CowBugs::for_era(KernelEra::V4_4).replay_dup_dentry_double_count);
        assert!(CowBugs::for_era(KernelEra::V4_15).name_reuse_breaks_replay);
        assert!(!CowBugs::for_era(KernelEra::V4_16).name_reuse_breaks_replay);
    }

    #[test]
    fn all_enables_everything() {
        assert_eq!(CowBugs::all().count_enabled(), 21);
    }

    #[test]
    fn durable_rename_resurrection_is_evaluation_kernel_only() {
        assert!(CowBugs::for_era(KernelEra::V4_16).durable_rename_resurrects_old_inode);
        assert!(!CowBugs::for_era(KernelEra::V4_15).durable_rename_resurrects_old_inode);
        assert!(!CowBugs::for_era(KernelEra::Patched).durable_rename_resurrects_old_inode);
    }
}
