//! The CowFs fsync log: item types, recording, and replay.
//!
//! This module is the analogue of btrfs's `tree-log.c`. On every
//! `fsync`/`fdatasync`/`msync` the *recorder* computes which log items the
//! persistence operation must emit, by diffing the working (in-memory) tree
//! against the committed (on-disk) tree; on recovery the *replay* applies
//! the items to a copy of the committed tree. Every btrfs bug in the paper's
//! corpus is an era-gated deviation in one of these two functions — exactly
//! where the corresponding patches landed in the real kernel.

use std::collections::{BTreeSet, HashMap, HashSet};

use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::metadata::FileType;
use b3_vfs::path::{is_ancestor, split_parent};
use b3_vfs::tree::{decode_inode, encode_inode, Inode, InodeId, MemTree, DIRENT_SIZE};

use crate::bugs::CowBugs;

/// One item in the fsync log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogItem {
    /// A logged inode: full metadata and (for regular files) data as of the
    /// persistence point. Directory entries are never carried by this item;
    /// they travel as [`LogItem::DentryAdd`] / [`LogItem::DentryRemove`].
    Inode {
        /// The logged inode (entries stripped for directories).
        inode: Inode,
    },
    /// Ensure that directory `dir_ino` has an entry `name -> child_ino`.
    DentryAdd {
        dir_ino: InodeId,
        name: String,
        child_ino: InodeId,
    },
    /// Ensure that directory `dir_ino` has no entry called `name`.
    DentryRemove { dir_ino: InodeId, name: String },
}

/// The accumulated log since the last full commit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogTree {
    /// Items in append order.
    pub items: Vec<LogItem>,
}

const LOG_MAGIC: u32 = 0x4c4f_4754; // "LOGT"

/// Byte length of the encoded log header ([`LOG_MAGIC`] plus the item
/// count); the items region starts here. The encoding is append-only in
/// the items and fully deterministic, so the items region of a shorter log
/// is a byte prefix of every longer log that extends it — which is what
/// lets the recovery session compare raw bytes instead of decoded items.
pub const LOG_HEADER_LEN: usize = 4 + 8;

impl LogTree {
    /// Creates an empty log.
    pub fn new() -> Self {
        LogTree::default()
    }

    /// True if no items have been logged since the last commit.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Clears the log (done by a full commit).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Returns true if the log already contains a `DentryAdd` for the given
    /// directory and name mapping to a *different* inode.
    pub fn has_conflicting_add(&self, dir_ino: InodeId, name: &str, child_ino: InodeId) -> bool {
        self.items.iter().any(|item| {
            matches!(item, LogItem::DentryAdd { dir_ino: d, name: n, child_ino: c }
                if *d == dir_ino && n == name && *c != child_ino)
        })
    }

    /// Returns true if the log contains a `DentryAdd` whose child is `ino`.
    pub fn has_add_for_child(&self, ino: InodeId) -> bool {
        self.items
            .iter()
            .any(|item| matches!(item, LogItem::DentryAdd { child_ino, .. } if *child_ino == ino))
    }

    /// Serializes the log.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(LOG_MAGIC);
        enc.put_u64(self.items.len() as u64);
        for item in &self.items {
            match item {
                LogItem::Inode { inode } => {
                    enc.put_u8(0);
                    encode_inode(&mut enc, inode);
                }
                LogItem::DentryAdd {
                    dir_ino,
                    name,
                    child_ino,
                } => {
                    enc.put_u8(1);
                    enc.put_u64(*dir_ino);
                    enc.put_str(name);
                    enc.put_u64(*child_ino);
                }
                LogItem::DentryRemove { dir_ino, name } => {
                    enc.put_u8(2);
                    enc.put_u64(*dir_ino);
                    enc.put_str(name);
                }
            }
        }
        enc.finish()
    }

    /// Deserializes a log previously produced by [`LogTree::encode`].
    pub fn decode(bytes: &[u8]) -> FsResult<LogTree> {
        let mut dec = Decoder::new(bytes);
        let count = Self::decode_header(&mut dec)?;
        Ok(LogTree {
            items: decode_items(&mut dec, count)?,
        })
    }

    /// Decodes only the items a previously decoded log did not have.
    /// `offset` is the byte length of that log's encoding and
    /// `prefix_items` its item count; the caller must have verified that
    /// this log's items region starts with the shorter log's (byte-for-byte
    /// — see `LOG_HEADER_LEN`), which makes decoding from `offset` land
    /// exactly on the first new item. Returns the suffix as its own log.
    pub fn decode_suffix(bytes: &[u8], offset: usize, prefix_items: usize) -> FsResult<LogTree> {
        let count = Self::decode_header(&mut Decoder::new(bytes))?;
        let suffix_count = count.checked_sub(prefix_items).ok_or_else(|| {
            FsError::Unmountable("log item count shrank below its replayed prefix".into())
        })?;
        let rest = bytes
            .get(offset..)
            .ok_or_else(|| FsError::Unmountable("log shorter than its replayed prefix".into()))?;
        Ok(LogTree {
            items: decode_items(&mut Decoder::new(rest), suffix_count)?,
        })
    }

    fn decode_header(dec: &mut Decoder) -> FsResult<usize> {
        if dec.get_u32()? != LOG_MAGIC {
            return Err(FsError::Unmountable("bad log magic".into()));
        }
        Ok(dec.get_u64()? as usize)
    }
}

fn decode_items(dec: &mut Decoder, count: usize) -> FsResult<Vec<LogItem>> {
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = dec.get_u8()?;
        let item = match tag {
            0 => LogItem::Inode {
                inode: decode_inode(dec)?,
            },
            1 => LogItem::DentryAdd {
                dir_ino: dec.get_u64()?,
                name: dec.get_str()?,
                child_ino: dec.get_u64()?,
            },
            2 => LogItem::DentryRemove {
                dir_ino: dec.get_u64()?,
                name: dec.get_str()?,
            },
            other => {
                return Err(FsError::Unmountable(format!(
                    "unknown log item tag {other}"
                )));
            }
        };
        items.push(item);
    }
    Ok(items)
}

/// The kind of persistence call being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// `fsync(2)`.
    Fsync,
    /// `fdatasync(2)`.
    Fdatasync,
    /// `msync(2)` of a byte range.
    Msync { offset: u64, len: u64 },
}

/// Mutable per-transaction recorder state owned by [`crate::CowFs`].
#[derive(Debug, Default)]
pub struct RecorderState {
    /// Inodes that already have an `Inode` item in the current log.
    pub logged_inos: HashSet<InodeId>,
    /// Inodes whose mmap dirty state was (incorrectly) cleared by a ranged
    /// msync — used by the `ranged_msync_clears_dirty` bug.
    pub mmap_clean: HashSet<InodeId>,
    /// Byte ranges punched per inode since the last commit — used by the
    /// `punch_hole_not_logged` bug.
    pub punched: HashMap<InodeId, Vec<(u64, u64)>>,
}

impl RecorderState {
    /// Resets all per-transaction state (done by a full commit).
    pub fn clear(&mut self) {
        self.logged_inos.clear();
        self.mmap_clean.clear();
        self.punched.clear();
    }
}

/// Context for recording one persistence operation.
pub struct Recorder<'a> {
    /// The in-memory (working) tree the syscall layer mutates.
    pub working: &'a MemTree,
    /// The last committed tree (what is durable without the log).
    pub committed: &'a MemTree,
    /// Active bug flags.
    pub bugs: &'a CowBugs,
    /// Items already in the log for this transaction.
    pub existing_log: &'a LogTree,
    /// Per-transaction recorder state.
    pub state: &'a mut RecorderState,
}

impl Recorder<'_> {
    /// Computes the log items a persistence call on `path` must append.
    pub fn record_persist(&mut self, path: &str, kind: SyncKind) -> FsResult<Vec<LogItem>> {
        let ino = self.working.resolve(path)?;
        let inode = self
            .working
            .inode(ino)
            .ok_or_else(|| FsError::Corrupted(format!("no inode {ino} for {path}")))?;
        let items = if inode.is_dir() {
            self.record_dir(ino)
        } else {
            self.record_file(ino, path, kind)
        };
        self.state.logged_inos.insert(ino);
        Ok(dedup_items(items))
    }

    // --- regular files / symlinks / fifos ------------------------------------------

    fn record_file(&mut self, ino: InodeId, fsync_path: &str, kind: SyncKind) -> Vec<LogItem> {
        let working = self.working.inode(ino).expect("resolved").clone();
        let committed = self.committed.inode(ino).cloned();

        // Ranged-msync bug: a second msync after the dirty state was cleared
        // logs nothing at all.
        if self.bugs.ranged_msync_clears_dirty
            && matches!(kind, SyncKind::Msync { .. })
            && self.state.mmap_clean.contains(&ino)
        {
            return Vec::new();
        }

        let mut logged = working.clone();
        logged.entries.clear();

        self.apply_data_bugs(&mut logged, &working, committed.as_ref(), kind, ino);

        let mut items = vec![LogItem::Inode { inode: logged }];
        self.record_file_names(&mut items, ino, fsync_path);
        items
    }

    /// Applies the data/metadata-content bug family to the inode item that
    /// is about to be logged.
    fn apply_data_bugs(
        &mut self,
        logged: &mut Inode,
        working: &Inode,
        committed: Option<&Inode>,
        kind: SyncKind,
        ino: InodeId,
    ) {
        let committed_nlink = committed.map_or(0, |c| c.nlink);
        let committed_len = committed.map_or(0, |c| c.data.len());

        // Ranged msync logs only the synced range; everything outside the
        // range reverts to committed contents, and the file is marked clean.
        if let SyncKind::Msync { offset, len } = kind {
            if self.bugs.ranged_msync_clears_dirty && (offset > 0 || offset + len < working.size())
            {
                let mut data = committed.map_or_else(
                    || vec![0u8; working.data.len()],
                    |c| {
                        let mut d = c.data.clone();
                        d.resize(working.data.len(), 0);
                        d
                    },
                );
                let end = ((offset + len) as usize).min(working.data.len());
                let start = (offset as usize).min(end);
                data[start..end].copy_from_slice(&working.data[start..end]);
                logged.data = data;
                self.state.mmap_clean.insert(ino);
            }
        }

        // Hard link added this transaction: the logged inode carries the
        // stale committed size and contents.
        if self.bugs.link_fsync_stale_inode && working.nlink > committed_nlink {
            match committed {
                Some(c) => {
                    logged.data = c.data.clone();
                    logged.allocated = c.allocated;
                }
                None => {
                    logged.data.clear();
                    logged.allocated = 0;
                }
            }
        } else if self.bugs.append_after_link_stale_extent
            && working.nlink > 1
            && committed.is_some()
            && working.data.len() > committed_len
        {
            // Appends to a multi-link file are not logged beyond the
            // committed size.
            logged.data.truncate(committed_len);
            logged.allocated = committed.map_or(0, |c| c.allocated);
        }

        // Holes punched this transaction are not logged: committed data
        // reappears in the punched range.
        if self.bugs.punch_hole_not_logged {
            if let (Some(c), Some(ranges)) = (committed, self.state.punched.get(&ino)) {
                for &(offset, len) in ranges {
                    let end = ((offset + len) as usize)
                        .min(c.data.len())
                        .min(logged.data.len());
                    let start = (offset as usize).min(end);
                    logged.data[start..end].copy_from_slice(&c.data[start..end]);
                }
                logged.allocated = logged.allocated.max(c.allocated);
            }
        }

        // Allocation beyond EOF is dropped from the log.
        if self.bugs.falloc_keep_size_not_logged {
            let covered = (logged.data.len() as u64).div_ceil(4096) * 4096;
            if logged.allocated > covered {
                logged.allocated = covered;
            }
        }

        // Removed xattrs reappear: the log carries the union of committed
        // and working xattrs.
        if self.bugs.xattr_removal_not_logged {
            if let Some(c) = committed {
                for (name, value) in &c.xattrs {
                    logged
                        .xattrs
                        .entry(name.clone())
                        .or_insert_with(|| value.clone());
                }
            }
        }
    }

    /// Logs the directory entries a file fsync must persist: new names,
    /// removed names, and the ancestor directories those names need.
    fn record_file_names(&mut self, items: &mut Vec<LogItem>, ino: InodeId, fsync_path: &str) {
        let working_names = self.working.paths_of_ino(ino);
        let committed_names = self.committed.paths_of_ino(ino);
        let committed_set: BTreeSet<&String> = committed_names.iter().collect();
        let working_set: BTreeSet<&String> = working_names.iter().collect();

        let new_names: Vec<&String> = working_names
            .iter()
            .filter(|n| !committed_set.contains(n))
            .collect();
        let removed_names: Vec<&String> = committed_names
            .iter()
            .filter(|n| !working_set.contains(n))
            .collect();

        let was_renamed = !new_names.is_empty() && !removed_names.is_empty();
        if self.bugs.fsync_renamed_file_skips_new_name && was_renamed {
            // The rename is simply not logged: the file recovers under its
            // committed (old) name.
            return;
        }

        // Names this inode was given earlier in the current log (by previous
        // fsync calls in the same transaction) but no longer holds must be
        // superseded, otherwise replay resurrects them with a stale link
        // count. This mirrors btrfs updating an inode's back-references when
        // it is logged again after a rename.
        let mut stale_logged_names: Vec<(InodeId, String)> = Vec::new();
        for item in &self.existing_log.items {
            if let LogItem::DentryAdd {
                dir_ino,
                name,
                child_ino,
            } = item
            {
                if *child_ino == ino {
                    let still_current = self
                        .working
                        .inode(*dir_ino)
                        .is_some_and(|dir| dir.entries.get(name) == Some(&ino));
                    if !still_current {
                        stale_logged_names.push((*dir_ino, name.clone()));
                    }
                }
            }
        }

        let fsync_path_norm = b3_vfs::path::normalize(fsync_path);
        let names_to_add: Vec<&String> = if self.bugs.fsync_skips_other_names {
            if self.state.logged_inos.contains(&ino) {
                Vec::new()
            } else {
                new_names
                    .iter()
                    .copied()
                    .filter(|n| **n == fsync_path_norm)
                    .collect()
            }
        } else {
            new_names.clone()
        };

        for name in &names_to_add {
            self.log_name(items, name, ino);
        }

        for name in &removed_names {
            if let Ok((dir_ino, entry_name)) = self.resolve_committed_parent(name) {
                items.push(LogItem::DentryRemove {
                    dir_ino,
                    name: entry_name,
                });
            }
            // If a different inode now occupies the removed name (rename
            // followed by re-creation), the correct log also carries that
            // occupant so the name does not vanish after replay.
            if let Ok(occupant) = self.working.resolve(name) {
                if occupant != ino {
                    if let Some(occupant_inode) = self.working.inode(occupant) {
                        let mut logged = occupant_inode.clone();
                        logged.entries.clear();
                        items.push(LogItem::Inode { inode: logged });
                        items.push(LogItem::DentryAdd {
                            dir_ino: self
                                .working
                                .resolve(&b3_vfs::path::parent(name).unwrap_or_default())
                                .unwrap_or(b3_vfs::ROOT_INO),
                            name: b3_vfs::path::file_name(name).unwrap_or_default(),
                            child_ino: occupant,
                        });
                    }
                }
            }
        }

        // Durable-rename resurrection bug: after the correct rename items,
        // the log carries a stale back-reference for every removed name —
        // an Inode item with a *fresh* inode number holding the committed
        // (pre-rename) contents, plus a dentry pointing the old name at it.
        // Replay instantiates the ghost, so the old name reappears as a
        // **distinct** inode after recovery. Only renames of files that
        // existed at the last commit have stale content to resurrect.
        if self.bugs.durable_rename_resurrects_old_inode && was_renamed {
            for (offset, name) in removed_names.iter().enumerate() {
                let (Ok((dir_ino, entry_name)), Some(committed_inode)) = (
                    self.resolve_committed_parent(name),
                    self.committed.inode(ino),
                ) else {
                    continue;
                };
                let ghost_ino = self.working.next_ino() + offset as u64;
                let mut ghost = committed_inode.clone();
                ghost.ino = ghost_ino;
                ghost.nlink = 1;
                ghost.entries.clear();
                items.push(LogItem::Inode { inode: ghost });
                items.push(LogItem::DentryAdd {
                    dir_ino,
                    name: entry_name,
                    child_ino: ghost_ino,
                });
            }
        }

        for (dir_ino, name) in stale_logged_names {
            items.push(LogItem::DentryRemove {
                dir_ino,
                name: name.clone(),
            });
            // As above: if the stale name is now held by a different inode,
            // persist that occupant too.
            if let Some(dir) = self.working.inode(dir_ino) {
                if let Some(&occupant) = dir.entries.get(&name) {
                    if occupant != ino {
                        if let Some(occupant_inode) = self.working.inode(occupant) {
                            let mut logged = occupant_inode.clone();
                            logged.entries.clear();
                            items.push(LogItem::Inode { inode: logged });
                            items.push(LogItem::DentryAdd {
                                dir_ino,
                                name,
                                child_ino: occupant,
                            });
                        }
                    }
                }
            }
        }

        // Sibling-dentry bug: entries created in the fsynced file's parent
        // directory during this transaction are logged without their inodes.
        if self.bugs.fsync_logs_sibling_dentries {
            if let Ok((parent_ino, _)) = self.resolve_working_parent(&fsync_path_norm) {
                let committed_parent_entries = self
                    .committed
                    .inode(parent_ino)
                    .map(|d| d.entries.clone())
                    .unwrap_or_default();
                if let Some(parent) = self.working.inode(parent_ino) {
                    for (name, child) in &parent.entries {
                        if *child != ino && !committed_parent_entries.contains_key(name) {
                            items.push(LogItem::DentryAdd {
                                dir_ino: parent_ino,
                                name: name.clone(),
                                child_ino: *child,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Emits the items needed to make `path` (a name of `ino`) resolvable
    /// after replay: ancestor directory inodes and dentries for every
    /// component missing from the committed tree, then the entry itself.
    /// Also persists the previous owner of the name when the name is being
    /// reused (unless the corresponding bug is active).
    fn log_name(&mut self, items: &mut Vec<LogItem>, path: &str, ino: InodeId) {
        // Ancestors first.
        let Ok((parent_path, name)) = split_parent(path) else {
            return;
        };
        self.log_ancestors(items, &parent_path);

        let Ok(parent_ino) = self.working.resolve(&parent_path) else {
            return;
        };

        // If the committed tree has a *different* inode at this name, the
        // name is being reused; the previous owner may have been renamed
        // away and its new location must be persisted too.
        if let Ok(prev_ino) = self.committed.resolve(path) {
            if prev_ino != ino && !self.bugs.rename_source_not_logged {
                if let Some(prev_inode) = self.working.inode(prev_ino) {
                    let mut logged = prev_inode.clone();
                    logged.entries.clear();
                    items.push(LogItem::Inode { inode: logged });
                    let committed_names = self.committed.paths_of_ino(prev_ino);
                    for new_name in self.working.paths_of_ino(prev_ino) {
                        if !committed_names.contains(&new_name) {
                            let Ok((pparent, pname)) = split_parent(&new_name) else {
                                continue;
                            };
                            self.log_ancestors(items, &pparent);
                            if let Ok(pparent_ino) = self.working.resolve(&pparent) {
                                items.push(LogItem::DentryAdd {
                                    dir_ino: pparent_ino,
                                    name: pname,
                                    child_ino: prev_ino,
                                });
                            }
                        }
                    }
                }
            }
        }

        items.push(LogItem::DentryAdd {
            dir_ino: parent_ino,
            name,
            child_ino: ino,
        });
    }

    /// Logs inode + dentry items for every ancestor directory of `dir_path`
    /// that does not exist in the committed tree.
    fn log_ancestors(&mut self, items: &mut Vec<LogItem>, dir_path: &str) {
        let mut prefix = String::new();
        for comp in b3_vfs::path::components(dir_path) {
            let current = b3_vfs::path::join(&prefix, &comp);
            if self.committed.resolve(&current).is_err() {
                if let Ok(dir_ino) = self.working.resolve(&current) {
                    if let Some(dir_inode) = self.working.inode(dir_ino) {
                        let mut logged = dir_inode.clone();
                        logged.entries.clear();
                        items.push(LogItem::Inode { inode: logged });
                    }
                    if let Ok(parent_ino) = self.working.resolve(&prefix) {
                        items.push(LogItem::DentryAdd {
                            dir_ino: parent_ino,
                            name: comp.clone(),
                            child_ino: dir_ino,
                        });
                    }
                    // The ancestor may exist in the committed tree under an
                    // old name (it was renamed this transaction): a correct
                    // log removes the stale name so the directory does not
                    // appear in two places after recovery. The buggy path
                    // ("rename not persisted by fsync") skips this.
                    if !self.bugs.dir_fsync_misses_renames {
                        for old_name in self.committed.paths_of_ino(dir_ino) {
                            if let Ok((old_parent, old_entry)) =
                                self.resolve_committed_parent(&old_name)
                            {
                                items.push(LogItem::DentryRemove {
                                    dir_ino: old_parent,
                                    name: old_entry,
                                });
                            }
                        }
                    }
                }
            }
            prefix = current;
        }
    }

    // --- directories ------------------------------------------------------------------

    fn record_dir(&mut self, dir_ino: InodeId) -> Vec<LogItem> {
        let working_dir = self.working.inode(dir_ino).expect("resolved").clone();
        let committed_entries = self
            .committed
            .inode(dir_ino)
            .map(|d| d.entries.clone())
            .unwrap_or_default();

        let mut items = Vec::new();

        // The directory itself (and, if it is new, the path leading to it).
        let dir_path = self
            .working
            .paths_of_ino(dir_ino)
            .into_iter()
            .next()
            .unwrap_or_default();
        if self.committed.inode(dir_ino).is_none() && !dir_path.is_empty() {
            self.log_name(&mut items, &dir_path, dir_ino);
        }
        let mut logged_dir = working_dir.clone();
        logged_dir.entries.clear();
        items.push(LogItem::Inode { inode: logged_dir });

        // Entry differences.
        for (name, child) in &working_dir.entries {
            let is_new = committed_entries.get(name) != Some(child);
            if !is_new {
                continue;
            }
            let child_inode = match self.working.inode(*child) {
                Some(inode) => inode.clone(),
                None => continue,
            };
            let child_in_committed = self.committed.inode(*child).is_some();

            match child_inode.kind {
                FileType::Directory => {
                    if self.bugs.dir_fsync_skips_new_subdirs && !child_in_committed {
                        continue;
                    }
                    self.log_subtree(&mut items, dir_ino, name, *child);
                }
                _ => {
                    // Broken rename atomicity: the name previously belonged to
                    // an inode that was already logged in this transaction;
                    // the replacing inode is not logged at all. (Checked
                    // before the new-file skip so the two 4.16-era bugs
                    // compose the way they do on real btrfs.)
                    let replaces_logged = self
                        .existing_log
                        .has_conflicting_add(dir_ino, name, *child)
                        || items.iter().any(|item| {
                            matches!(item, LogItem::DentryAdd { dir_ino: d, name: n, child_ino: c }
                                if *d == dir_ino && n == name && *c != *child)
                        });
                    if self.bugs.rename_over_logged_skips_new_inode && replaces_logged {
                        items.push(LogItem::DentryAdd {
                            dir_ino,
                            name: name.clone(),
                            child_ino: *child,
                        });
                        continue;
                    }
                    if self.bugs.dir_fsync_skips_new_files && !child_in_committed {
                        continue;
                    }
                    let mut logged_child = child_inode.clone();
                    logged_child.entries.clear();
                    if self.bugs.symlink_target_not_logged && logged_child.kind == FileType::Symlink
                    {
                        logged_child.symlink_target.clear();
                    }
                    items.push(LogItem::Inode {
                        inode: logged_child,
                    });
                    items.push(LogItem::DentryAdd {
                        dir_ino,
                        name: name.clone(),
                        child_ino: *child,
                    });
                }
            }
        }

        for name in committed_entries.keys() {
            if !working_dir.entries.contains_key(name) {
                items.push(LogItem::DentryRemove {
                    dir_ino,
                    name: name.clone(),
                });
            }
        }

        // Renames into or out of the directory's subtree.
        if !self.bugs.dir_fsync_misses_renames {
            self.log_subtree_renames(&mut items, &dir_path);
        }

        items
    }

    /// Recursively logs a (new) subtree rooted at `child` under `dir_ino`.
    fn log_subtree(
        &mut self,
        items: &mut Vec<LogItem>,
        dir_ino: InodeId,
        name: &str,
        child: InodeId,
    ) {
        let Some(child_inode) = self.working.inode(child) else {
            return;
        };
        let mut logged = child_inode.clone();
        logged.entries.clear();
        if self.bugs.symlink_target_not_logged && logged.kind == FileType::Symlink {
            logged.symlink_target.clear();
        }
        items.push(LogItem::Inode { inode: logged });
        items.push(LogItem::DentryAdd {
            dir_ino,
            name: name.to_string(),
            child_ino: child,
        });
        if child_inode.kind == FileType::Directory {
            for (grand_name, grand_child) in child_inode.entries.clone() {
                self.log_subtree(items, child, &grand_name, grand_child);
            }
        }
    }

    /// Logs every inode that moved into or out of `dir_path`'s subtree this
    /// transaction, with its new dentry and the removal of its old one.
    fn log_subtree_renames(&mut self, items: &mut Vec<LogItem>, dir_path: &str) {
        for inode in self.committed.inodes() {
            let committed_names = self.committed.paths_of_ino(inode.ino);
            if committed_names.is_empty() {
                continue;
            }
            let working_names = self.working.paths_of_ino(inode.ino);
            if working_names == committed_names || working_names.is_empty() {
                continue;
            }
            let involved = committed_names
                .iter()
                .chain(working_names.iter())
                .any(|p| is_ancestor(dir_path, p));
            if !involved {
                continue;
            }
            if let Some(working_inode) = self.working.inode(inode.ino) {
                let mut logged = working_inode.clone();
                logged.entries.clear();
                items.push(LogItem::Inode { inode: logged });
                for name in &working_names {
                    if !committed_names.contains(name) {
                        self.log_name(items, name, inode.ino);
                    }
                }
                for name in &committed_names {
                    if !working_names.contains(name) {
                        if let Ok((dir_ino, entry_name)) = self.resolve_committed_parent(name) {
                            // When a directory is renamed, its children keep
                            // the same (directory inode, name) pair even
                            // though their path changed; removing that pair
                            // would delete the entry we just logged.
                            let re_added = items.iter().any(|item| {
                                matches!(item, LogItem::DentryAdd { dir_ino: d, name: n, .. }
                                    if *d == dir_ino && n == &entry_name)
                            });
                            if !re_added {
                                items.push(LogItem::DentryRemove {
                                    dir_ino,
                                    name: entry_name,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // --- helpers -----------------------------------------------------------------------

    fn resolve_committed_parent(&self, path: &str) -> FsResult<(InodeId, String)> {
        let (parent, name) = split_parent(path)?;
        let dir_ino = self.committed.resolve(&parent)?;
        Ok((dir_ino, name))
    }

    fn resolve_working_parent(&self, path: &str) -> FsResult<(InodeId, String)> {
        let (parent, name) = split_parent(path)?;
        let dir_ino = self.working.resolve(&parent)?;
        Ok((dir_ino, name))
    }
}

/// Removes exact-duplicate items while preserving order (keeping the last
/// `Inode` item for an inode so later metadata wins, and the first of
/// identical dentry items).
fn dedup_items(items: Vec<LogItem>) -> Vec<LogItem> {
    let mut out: Vec<LogItem> = Vec::with_capacity(items.len());
    for item in items {
        match &item {
            LogItem::Inode { inode } => {
                if let Some(pos) = out.iter().position(
                    |existing| matches!(existing, LogItem::Inode { inode: e } if e.ino == inode.ino),
                ) {
                    out[pos] = item;
                } else {
                    out.push(item);
                }
            }
            _ => {
                if !out.contains(&item) {
                    out.push(item);
                }
            }
        }
    }
    out
}

/// Replays a log onto a copy of the committed tree, producing the recovered
/// tree. Returns [`FsError::Unmountable`] when replay cannot proceed.
pub fn replay(committed: &MemTree, log: &LogTree, bugs: &CowBugs) -> FsResult<MemTree> {
    let mut tree = committed.clone();
    replay_from(&mut tree, committed, log, 0, bugs)?;
    Ok(tree)
}

/// Continues a replay of `log` onto `tree`, which must already reflect the
/// replay of `log.items[..start]` over `committed`. Replay is a sequential
/// fold whose per-item transition reads only the current tree, the full
/// log, and the *original* committed tree — so folding a suffix onto a
/// cached prefix result is exactly equivalent to replaying the whole log
/// from scratch (the incremental recovery sessions rely on this; the
/// trailing allocator-reset quirk re-evaluates its whole-log condition
/// here, and that condition is monotone in the log, so applying it after
/// the prefix and again after the suffix agrees with applying it once at
/// the end).
pub fn replay_from(
    tree: &mut MemTree,
    committed: &MemTree,
    log: &LogTree,
    start: usize,
    bugs: &CowBugs,
) -> FsResult<()> {
    let committed_next_ino = committed.next_ino();

    for item in &log.items[start..] {
        match item {
            LogItem::Inode { inode } => {
                let mut replayed = inode.clone();
                if replayed.kind == FileType::Directory {
                    // Keep whatever entries the tree currently has for this
                    // directory; entries only change through dentry items,
                    // and the directory size is rebuilt from those entries so
                    // the on-disk bookkeeping stays consistent (the
                    // double-count bug below deliberately breaks this).
                    replayed.entries = tree
                        .inode(replayed.ino)
                        .map(|existing| existing.entries.clone())
                        .unwrap_or_default();
                    replayed.dir_size = replayed.entries.len() as u64 * DIRENT_SIZE;
                }
                tree.insert_inode_raw(replayed);
            }
            LogItem::DentryAdd {
                dir_ino,
                name,
                child_ino,
            } => {
                let existing = {
                    let dir = tree.inode(*dir_ino).ok_or_else(|| {
                        FsError::Unmountable(format!(
                            "log replay: dentry targets missing directory inode {dir_ino}"
                        ))
                    })?;
                    if !dir.is_dir() {
                        return Err(FsError::Unmountable(format!(
                            "log replay: dentry targets non-directory inode {dir_ino}"
                        )));
                    }
                    dir.entries.get(name).copied()
                };
                let dir = tree.inode_mut(*dir_ino).expect("checked above");
                match existing {
                    Some(existing_child) if existing_child == *child_ino => {
                        if bugs.replay_dup_dentry_double_count {
                            dir.dir_size += DIRENT_SIZE;
                        }
                    }
                    Some(existing_child) => {
                        if bugs.name_reuse_breaks_replay {
                            return Err(FsError::Unmountable(format!(
                                "log replay: conflicting entries for '{name}' \
                                 (existing inode {existing_child}, logged inode {child_ino})"
                            )));
                        }
                        dir.entries.insert(name.clone(), *child_ino);
                        if bugs.replay_dup_dentry_double_count {
                            dir.dir_size += DIRENT_SIZE;
                        }
                    }
                    None => {
                        dir.entries.insert(name.clone(), *child_ino);
                        dir.dir_size += DIRENT_SIZE;
                        if bugs.replay_dup_dentry_double_count {
                            dir.dir_size += DIRENT_SIZE;
                        }
                    }
                }
            }
            LogItem::DentryRemove { dir_ino, name } => {
                let Some(dir) = tree.inode(*dir_ino) else {
                    continue;
                };
                let Some(&child) = dir.entries.get(name) else {
                    continue;
                };
                // The multilink check looks at the *committed* inode: the
                // real bug skipped removals for inodes that had extra links
                // at the start of the transaction.
                let child_multilink = committed.inode(child).is_some_and(|c| c.nlink > 1);
                if bugs.replay_skips_dentry_removal_multilink && child_multilink {
                    continue;
                }
                if bugs.replay_keeps_old_dentry_after_rename && log.has_add_for_child(child) {
                    continue;
                }
                let dir = tree.inode_mut(*dir_ino).expect("checked above");
                dir.entries.remove(name);
                dir.dir_size = dir.dir_size.saturating_sub(DIRENT_SIZE);
            }
        }
    }

    if bugs.replay_resets_inode_allocator {
        // The real bug only bites when log replay instantiated inodes inside
        // a directory that itself was created in the replayed transaction
        // (the "mkdir; creat; fsync file" shape): the allocator cursor is
        // then restored from the stale committed value and the next creation
        // collides with a replayed inode.
        let replayed_new_dir = log.items.iter().any(|item| {
            matches!(item, LogItem::Inode { inode }
                if inode.kind == FileType::Directory && committed.inode(inode.ino).is_none())
        });
        if replayed_new_dir {
            tree.set_next_ino(committed_next_ino);
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_fixture(
        working: &MemTree,
        committed: &MemTree,
        bugs: &CowBugs,
    ) -> (LogTree, RecorderState) {
        let _ = (working, committed, bugs);
        (LogTree::new(), RecorderState::default())
    }

    fn record(
        working: &MemTree,
        committed: &MemTree,
        bugs: &CowBugs,
        path: &str,
        kind: SyncKind,
    ) -> Vec<LogItem> {
        let (log, mut state) = recorder_fixture(working, committed, bugs);
        let mut recorder = Recorder {
            working,
            committed,
            bugs,
            existing_log: &log,
            state: &mut state,
        };
        recorder.record_persist(path, kind).unwrap()
    }

    #[test]
    fn log_round_trip() {
        let mut tree = MemTree::new();
        tree.create_file("foo").unwrap();
        tree.write("foo", 0, b"hello").unwrap();
        let ino = tree.resolve("foo").unwrap();
        let log = LogTree {
            items: vec![
                LogItem::Inode {
                    inode: tree.inode(ino).unwrap().clone(),
                },
                LogItem::DentryAdd {
                    dir_ino: 1,
                    name: "foo".into(),
                    child_ino: ino,
                },
                LogItem::DentryRemove {
                    dir_ino: 1,
                    name: "old".into(),
                },
            ],
        };
        let decoded = LogTree::decode(&log.encode()).unwrap();
        assert_eq!(decoded, log);
    }

    #[test]
    fn correct_fsync_of_new_file_survives_replay() {
        let committed = MemTree::new();
        let mut working = committed.clone();
        working.mkdir("A").unwrap();
        working.create_file("A/foo").unwrap();
        working.write("A/foo", 0, &[9u8; 8192]).unwrap();

        let items = record(
            &working,
            &committed,
            &CowBugs::none(),
            "A/foo",
            SyncKind::Fsync,
        );
        let log = LogTree { items };
        let recovered = replay(&committed, &log, &CowBugs::none()).unwrap();
        assert_eq!(recovered.metadata("A/foo").unwrap().size, 8192);
        assert_eq!(recovered.read("A/foo", 0, 10).unwrap(), vec![9u8; 10]);
        // The un-fsynced rest of the transaction (nothing here) is absent,
        // and the directory bookkeeping is consistent: A can be emptied and
        // removed.
        let mut check = recovered.clone();
        check.unlink("A/foo").unwrap();
        check.rmdir("A").unwrap();
    }

    #[test]
    fn link_fsync_stale_inode_bug_loses_data() {
        let mut committed = MemTree::new();
        committed.mkdir("A").unwrap();
        committed.create_file("A/foo").unwrap();
        let mut working = committed.clone();
        working.write("A/foo", 0, &[7u8; 16 * 1024]).unwrap();
        working.link("A/foo", "A/bar").unwrap();

        let bugs = CowBugs {
            link_fsync_stale_inode: true,
            ..CowBugs::none()
        };
        let items = record(&working, &committed, &bugs, "A/foo", SyncKind::Fsync);
        let recovered = replay(&committed, &LogTree { items }, &bugs).unwrap();
        assert_eq!(
            recovered.metadata("A/foo").unwrap().size,
            0,
            "the logged inode must carry the stale committed size"
        );

        // Without the bug the data survives.
        let good = record(
            &working,
            &committed,
            &CowBugs::none(),
            "A/foo",
            SyncKind::Fsync,
        );
        let recovered = replay(&committed, &LogTree { items: good }, &CowBugs::none()).unwrap();
        assert_eq!(recovered.metadata("A/foo").unwrap().size, 16 * 1024);
        assert!(recovered.exists("A/bar"));
    }

    #[test]
    fn name_reuse_breaks_replay_makes_fs_unmountable() {
        // Figure 1: create foo; link foo bar; sync; unlink bar; create bar; fsync bar.
        let mut committed = MemTree::new();
        committed.create_file("foo").unwrap();
        committed.link("foo", "bar").unwrap();
        let mut working = committed.clone();
        working.unlink("bar").unwrap();
        working.create_file("bar").unwrap();

        let bugs = CowBugs {
            name_reuse_breaks_replay: true,
            ..CowBugs::none()
        };
        let items = record(&working, &committed, &bugs, "bar", SyncKind::Fsync);
        let err = replay(&committed, &LogTree { items }, &bugs).unwrap_err();
        assert!(matches!(err, FsError::Unmountable(_)));

        // A patched kernel replays the same log cleanly.
        let good_items = record(
            &working,
            &committed,
            &CowBugs::none(),
            "bar",
            SyncKind::Fsync,
        );
        let recovered =
            replay(&committed, &LogTree { items: good_items }, &CowBugs::none()).unwrap();
        assert!(recovered.exists("bar"));
        assert!(recovered.exists("foo"));
    }

    #[test]
    fn dup_dentry_double_count_makes_dir_unremovable() {
        // Workload 21: mkdir A; touch A/foo; sync; touch A/bar; fsync A; fsync A/bar.
        let mut committed = MemTree::new();
        committed.mkdir("A").unwrap();
        committed.create_file("A/foo").unwrap();
        let mut working = committed.clone();
        working.create_file("A/bar").unwrap();

        let bugs = CowBugs {
            replay_dup_dentry_double_count: true,
            ..CowBugs::none()
        };
        let mut log = LogTree::new();
        let mut state = RecorderState::default();
        for path in ["A", "A/bar"] {
            let mut recorder = Recorder {
                working: &working,
                committed: &committed,
                bugs: &bugs,
                existing_log: &log,
                state: &mut state,
            };
            let items = recorder.record_persist(path, SyncKind::Fsync).unwrap();
            log.items.extend(items);
        }
        let recovered = replay(&committed, &log, &bugs).unwrap();
        let mut check = recovered.clone();
        check.unlink("A/foo").unwrap();
        check.unlink("A/bar").unwrap();
        assert!(
            matches!(check.rmdir("A"), Err(FsError::DirectoryNotEmpty(_))),
            "directory must be un-removable due to stale size"
        );

        // Patched replay of the same log keeps the directory removable.
        let recovered = replay(&committed, &log, &CowBugs::none()).unwrap();
        let mut check = recovered.clone();
        check.unlink("A/foo").unwrap();
        check.unlink("A/bar").unwrap();
        check.rmdir("A").unwrap();
    }

    #[test]
    fn dir_fsync_skips_new_files_loses_children() {
        // New bug 6: files created in a directory disappear even though the
        // directory itself was fsynced.
        let committed = MemTree::new();
        let mut working = committed.clone();
        working.mkdir("test").unwrap();
        working.mkdir("test/A").unwrap();
        working.create_file("test/foo").unwrap();
        working.create_file("test/A/foo").unwrap();

        let bugs = CowBugs {
            dir_fsync_skips_new_files: true,
            ..CowBugs::none()
        };
        let items = record(&working, &committed, &bugs, "test", SyncKind::Fsync);
        let recovered = replay(&committed, &LogTree { items }, &bugs).unwrap();
        assert!(recovered.exists("test"));
        assert!(!recovered.exists("test/foo"), "new child file must be lost");

        let good = record(
            &working,
            &committed,
            &CowBugs::none(),
            "test",
            SyncKind::Fsync,
        );
        let recovered = replay(&committed, &LogTree { items: good }, &CowBugs::none()).unwrap();
        assert!(recovered.exists("test/foo"));
        assert!(recovered.exists("test/A/foo"));
    }

    #[test]
    fn fsync_skips_other_names_loses_hard_link() {
        // New bug 7: link foo A/bar; fsync foo — A/bar must survive on a
        // correct file system and disappear with the bug.
        let committed = MemTree::new();
        let mut working = committed.clone();
        working.create_file("foo").unwrap();
        working.mkdir("A").unwrap();
        working.link("foo", "A/bar").unwrap();

        let bugs = CowBugs {
            fsync_skips_other_names: true,
            ..CowBugs::none()
        };
        let items = record(&working, &committed, &bugs, "foo", SyncKind::Fsync);
        let recovered = replay(&committed, &LogTree { items }, &bugs).unwrap();
        assert!(recovered.exists("foo"));
        assert!(!recovered.exists("A/bar"));

        let good = record(
            &working,
            &committed,
            &CowBugs::none(),
            "foo",
            SyncKind::Fsync,
        );
        let recovered = replay(&committed, &LogTree { items: good }, &CowBugs::none()).unwrap();
        assert!(recovered.exists("A/bar"));
    }

    #[test]
    fn renamed_file_recovers_under_old_name_with_bug() {
        // Workload 22: touch A/foo; write; sync; mv A/foo A/bar; fsync A/bar.
        let mut committed = MemTree::new();
        committed.mkdir("A").unwrap();
        committed.create_file("A/foo").unwrap();
        committed.write("A/foo", 0, &[1u8; 4096]).unwrap();
        let mut working = committed.clone();
        working.rename("A/foo", "A/bar").unwrap();

        let bugs = CowBugs {
            fsync_renamed_file_skips_new_name: true,
            ..CowBugs::none()
        };
        let items = record(&working, &committed, &bugs, "A/bar", SyncKind::Fsync);
        let recovered = replay(&committed, &LogTree { items }, &bugs).unwrap();
        assert!(recovered.exists("A/foo"), "old name persists with the bug");
        assert!(!recovered.exists("A/bar"));

        let good = record(
            &working,
            &committed,
            &CowBugs::none(),
            "A/bar",
            SyncKind::Fsync,
        );
        let recovered = replay(&committed, &LogTree { items: good }, &CowBugs::none()).unwrap();
        assert!(recovered.exists("A/bar"));
        assert!(!recovered.exists("A/foo"));
    }

    #[test]
    fn durable_rename_resurrects_old_name_as_distinct_inode() {
        // write A/foo; sync; rename A/foo A/bar; fsync A/bar — with the bug,
        // recovery shows A/foo again, holding the committed content but a
        // *different* inode than A/bar.
        let mut committed = MemTree::new();
        committed.mkdir("A").unwrap();
        committed.create_file("A/foo").unwrap();
        committed.write("A/foo", 0, &[5u8; 8192]).unwrap();
        let mut working = committed.clone();
        working.rename("A/foo", "A/bar").unwrap();

        let bugs = CowBugs {
            durable_rename_resurrects_old_inode: true,
            ..CowBugs::none()
        };
        let items = record(&working, &committed, &bugs, "A/bar", SyncKind::Fsync);
        let recovered = replay(&committed, &LogTree { items }, &bugs).unwrap();
        assert!(recovered.exists("A/bar"), "the rename itself is durable");
        assert!(
            recovered.exists("A/foo"),
            "the old name must be resurrected"
        );
        let old_ino = recovered.resolve("A/foo").unwrap();
        let new_ino = recovered.resolve("A/bar").unwrap();
        assert_ne!(
            old_ino, new_ino,
            "the resurrected old name must be a distinct inode"
        );
        assert_eq!(
            recovered.metadata("A/foo").unwrap().size,
            8192,
            "the ghost carries the committed contents"
        );

        // Without the bug the old name is gone after recovery.
        let good = record(
            &working,
            &committed,
            &CowBugs::none(),
            "A/bar",
            SyncKind::Fsync,
        );
        let recovered = replay(&committed, &LogTree { items: good }, &CowBugs::none()).unwrap();
        assert!(recovered.exists("A/bar"));
        assert!(!recovered.exists("A/foo"));
    }

    #[test]
    fn dedup_keeps_latest_inode_item() {
        let mut tree = MemTree::new();
        tree.create_file("f").unwrap();
        let ino = tree.resolve("f").unwrap();
        let mut old = tree.inode(ino).unwrap().clone();
        old.data = vec![1];
        let mut new = old.clone();
        new.data = vec![1, 2, 3];
        let items = dedup_items(vec![
            LogItem::Inode { inode: old },
            LogItem::DentryAdd {
                dir_ino: 1,
                name: "f".into(),
                child_ino: ino,
            },
            LogItem::DentryAdd {
                dir_ino: 1,
                name: "f".into(),
                child_ino: ino,
            },
            LogItem::Inode { inode: new.clone() },
        ]);
        assert_eq!(items.len(), 2);
        assert!(matches!(&items[0], LogItem::Inode { inode } if inode.data == new.data));
    }
}
