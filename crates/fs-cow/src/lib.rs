//! CowFs: a btrfs-like copy-on-write file system with an fsync log tree.
//!
//! CowFs is the workspace's stand-in for btrfs, the file system in which the
//! overwhelming majority of the paper's crash-consistency bugs live (24 of
//! the 28 studied bugs, 8 of the 10 newly found ones). It reproduces the
//! architectural properties that make those bugs possible:
//!
//! * All operations modify only in-memory state (the *working tree*).
//! * A full commit — triggered by `sync()` or a clean unmount — writes the
//!   whole tree copy-on-write to fresh blocks and flips the superblock with
//!   FLUSH+FUA.
//! * `fsync`/`fdatasync`/`msync` do **not** commit; they append *log items*
//!   describing the persisted inode (and the directory entries it needs) to
//!   a log area — the analogue of the btrfs log tree.
//! * Mounting an uncleanly-unmounted image loads the last committed tree and
//!   replays the log items into it.
//!
//! Every crash-consistency bug from the paper's btrfs corpus is implemented
//! as an era-gated deviation in exactly one of those two places — log
//! *recording* (which items are emitted for an fsync) or log *replay* (how
//! items are applied during recovery) — mirroring where the real bugs lived.
//! See [`CowBugs`] for the complete catalogue.

mod bugs;
mod fs;
mod log;

pub use bugs::CowBugs;
pub use fs::{CowFs, CowFsSpec};
pub use log::{LogItem, LogTree};
