//! The application-level CrashMonkey: profiles a transaction workload
//! through a recording block device, constructs every crash state the
//! block layer enumerates, recovers the engine on each, and asks the
//! transaction oracle.
//!
//! The pipeline is deliberately identical to `b3_crashmonkey::CrashMonkey`:
//! format once, mount a copy-on-write snapshot on a [`RecordingDevice`],
//! run the workload while persistence points insert checkpoint markers,
//! then replay the IO log up to each checkpoint with
//! [`crash_state`]. Only the two ends differ — the workload is transactions
//! against [`WalKv`] instead of syscalls, and the checker is [`TxnOracle`]
//! instead of the file-state AutoChecker.

use std::sync::OnceLock;

use b3_block::{
    crash_state, BlockDevice, CowSnapshotDevice, DiskImage, IoLog, LogHandle, RecordingDevice,
};
use b3_crashmonkey::{BugReport, Consequence, CrashMonkeyConfig, WorkloadOutcome};
use b3_vfs::fs::{FileSystem, FsSpec, GuaranteeProfile, WriteMode};
use b3_vfs::workload::FallocMode;
use b3_vfs::{FsError, FsResult, Metadata};

use crate::bounds::TxnOpKind;
use crate::engine::{EngineProfile, WalKv};
use crate::generator::{key_name, value_for, TxnWorkload};
use crate::oracle::{CrashPointMeta, TxnOracle};

/// A forwarding [`FileSystem`] wrapper that inserts a block-log checkpoint
/// marker after every successful persistence operation — the app-layer
/// equivalent of the syscall executor's checkpoint insertion.
struct CheckpointFs {
    inner: Box<dyn FileSystem>,
    log: LogHandle,
    pending: Vec<u32>,
}

impl CheckpointFs {
    fn new(inner: Box<dyn FileSystem>, log: LogHandle) -> Self {
        CheckpointFs {
            inner,
            log,
            pending: Vec::new(),
        }
    }

    /// Drains the checkpoints inserted since the last call.
    fn take_checkpoints(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.pending)
    }

    fn mark(&mut self) {
        self.pending.push(self.log.checkpoint());
    }
}

impl FileSystem for CheckpointFs {
    fn fs_name(&self) -> &'static str {
        self.inner.fs_name()
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        self.inner.create(path)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.inner.mkdir(path)
    }

    fn mkfifo(&mut self, path: &str) -> FsResult<()> {
        self.inner.mkfifo(path)
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> FsResult<()> {
        self.inner.symlink(target, linkpath)
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.inner.link(existing, new)
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.inner.unlink(path)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.inner.rmdir(path)
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.inner.rename(from, to)
    }

    fn write(&mut self, path: &str, offset: u64, data: &[u8], mode: WriteMode) -> FsResult<()> {
        self.inner.write(path, offset, data, mode)
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        self.inner.truncate(path, size)
    }

    fn fallocate(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) -> FsResult<()> {
        self.inner.fallocate(path, mode, offset, len)
    }

    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        self.inner.setxattr(path, name, value)
    }

    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        self.inner.removexattr(path, name)
    }

    fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        self.inner.getxattr(path, name)
    }

    fn read(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.inner.read(path, offset, len)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.inner.readdir(path)
    }

    fn metadata(&self, path: &str) -> FsResult<Metadata> {
        self.inner.metadata(path)
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        self.inner.readlink(path)
    }

    fn fsync(&mut self, path: &str) -> FsResult<()> {
        self.inner.fsync(path)?;
        self.mark();
        Ok(())
    }

    fn fdatasync(&mut self, path: &str) -> FsResult<()> {
        self.inner.fdatasync(path)?;
        self.mark();
        Ok(())
    }

    fn sync(&mut self) -> FsResult<()> {
        self.inner.sync()?;
        self.mark();
        Ok(())
    }

    fn unmount(self: Box<Self>) -> FsResult<Box<dyn BlockDevice>> {
        self.inner.unmount()
    }

    fn guarantees(&self) -> GuaranteeProfile {
        self.inner.guarantees()
    }
}

/// Formats a fresh file system, initialises the engine's store on it, and
/// freezes the device into the immutable base image every workload mounts
/// snapshots of.
pub fn formatted_app_image(spec: &dyn FsSpec, config: &CrashMonkeyConfig) -> FsResult<DiskImage> {
    let device = CowSnapshotDevice::new(DiskImage::empty(config.device_blocks));
    let mut fs = spec.mkfs(Box::new(device))?;
    WalKv::format(fs.as_mut())?;
    let device = fs.unmount()?;
    device.freeze_image().ok_or_else(|| {
        FsError::Corrupted("mkfs device does not support freezing into an image".into())
    })
}

/// The profile phase's output: the recorded IO log and per-persistence-
/// point crash metadata.
struct AppProfile {
    log: IoLog,
    crash_points: Vec<CrashPointMeta>,
}

/// Application-level crash tester for one file system and engine profile.
pub struct AppHarness<'a> {
    spec: &'a dyn FsSpec,
    config: CrashMonkeyConfig,
    engine: EngineProfile,
    formatted: OnceLock<DiskImage>,
}

impl<'a> AppHarness<'a> {
    /// Creates a harness; the base image is formatted lazily on first use.
    pub fn new(spec: &'a dyn FsSpec, config: CrashMonkeyConfig, engine: EngineProfile) -> Self {
        AppHarness {
            spec,
            config,
            engine,
            formatted: OnceLock::new(),
        }
    }

    /// The engine profile under test.
    pub fn engine(&self) -> EngineProfile {
        self.engine
    }

    /// The file-system spec under test.
    pub fn spec(&self) -> &dyn FsSpec {
        self.spec
    }

    /// The CrashMonkey configuration in use.
    pub fn config(&self) -> &CrashMonkeyConfig {
        &self.config
    }

    fn formatted_image(&self) -> FsResult<DiskImage> {
        if let Some(image) = self.formatted.get() {
            return Ok(image.clone());
        }
        let image = formatted_app_image(self.spec, &self.config)?;
        Ok(self.formatted.get_or_init(|| image).clone())
    }

    /// Tests one transaction workload: profiles it, then crash-tests every
    /// selected persistence point.
    pub fn test_workload(&self, workload: &TxnWorkload) -> FsResult<WorkloadOutcome> {
        let base = self.formatted_image()?;
        let profile = self.profile_workload(&base, workload)?;
        let oracle = TxnOracle::new(workload);

        // §5.3 strategy, same as the fs-level pipeline: in exhaustive
        // generation only the final persistence point is new; the other
        // policies cover all of them.
        let selected: Vec<&CrashPointMeta> = if self.config.crash_points.covers_all() {
            profile.crash_points.iter().collect()
        } else {
            profile.crash_points.last().into_iter().collect()
        };

        let mut outcome = WorkloadOutcome::from_parts(
            workload.name.clone(),
            workload.skeleton_string(),
            self.spec.name(),
        );
        for meta in selected {
            outcome.checkpoints_tested += 1;
            if let Some(report) =
                self.check_crash_point(&base, &profile.log, &oracle, meta, workload)?
            {
                outcome.bugs.push(report);
            }
        }
        Ok(outcome)
    }

    /// Runs the workload's transactions against the engine on a recording
    /// mount, collecting the IO log and crash-point metadata.
    fn profile_workload(&self, base: &DiskImage, workload: &TxnWorkload) -> FsResult<AppProfile> {
        let snapshot = CowSnapshotDevice::new(base.clone());
        let recording = RecordingDevice::new(Box::new(snapshot));
        let log = recording.log_handle();
        let inner = self.spec.mount(Box::new(recording))?;
        let mut fs = CheckpointFs::new(inner, log);
        let mut engine = WalKv::open(&mut fs, self.engine)?;

        let mut crash_points = Vec::new();
        let mut committed: u32 = 0;
        // A fresh store replays nothing, so opening normally inserts no
        // persistence points; record any that do appear (pre-transaction,
        // nothing in flight).
        for checkpoint in fs.take_checkpoints() {
            crash_points.push(CrashPointMeta {
                checkpoint,
                committed_before: 0,
                in_flight: None,
            });
        }
        for (position, txn) in workload.txns.iter().enumerate() {
            for (op_index, op) in txn.ops.iter().enumerate() {
                let key = key_name(op.key);
                match op.kind {
                    TxnOpKind::Put => engine.put(&key, &value_for(position, op_index)),
                    TxnOpKind::Append => engine.append(&key, &value_for(position, op_index)),
                    TxnOpKind::Delete => engine.delete(&key),
                }
            }
            if txn.commit {
                engine.commit(&mut fs)?;
                for checkpoint in fs.take_checkpoints() {
                    crash_points.push(CrashPointMeta {
                        checkpoint,
                        committed_before: committed,
                        in_flight: Some(position as u32),
                    });
                }
                committed += 1;
            } else {
                engine.abort();
            }
        }
        let log = fs.log.snapshot();
        Ok(AppProfile { log, crash_points })
    }

    /// Builds one crash state, recovers the engine on it twice, and asks
    /// the oracle. Returns a report when an invariant was violated.
    fn check_crash_point(
        &self,
        base: &DiskImage,
        log: &IoLog,
        oracle: &TxnOracle,
        meta: &CrashPointMeta,
        workload: &TxnWorkload,
    ) -> FsResult<Option<BugReport>> {
        let device = crash_state(base, log, meta.checkpoint)?;
        let mut fs = match self.spec.mount(Box::new(device)) {
            Ok(fs) => fs,
            Err(FsError::Unmountable(detail)) => {
                return Ok(Some(BugReport {
                    workload_name: workload.name.clone(),
                    skeleton: workload.skeleton_string(),
                    fs_name: self.spec.name().to_string(),
                    crash_point: meta.checkpoint,
                    consequence: Consequence::Unmountable,
                    all_consequences: vec![Consequence::Unmountable],
                    expected: "mountable file system".to_string(),
                    actual: format!("recovery failed: {detail}"),
                    diffs: Vec::new(),
                    write_check_failures: Vec::new(),
                }));
            }
            Err(other) => return Err(other),
        };
        let recovered = WalKv::open(fs.as_mut(), self.engine)?.dump();
        // Idempotence probe: recover the same crash state a second time
        // (the first recovery's compaction is now on "disk").
        let reopened = WalKv::open(fs.as_mut(), self.engine)?.dump();
        let verdict = oracle.classify(meta, &recovered, &reopened);
        if verdict.is_clean() {
            return Ok(None);
        }
        let mut consequences: Vec<Consequence> =
            verdict.violations.iter().map(|v| v.consequence).collect();
        consequences.sort_unstable();
        consequences.dedup();
        let details: Vec<String> = verdict
            .violations
            .iter()
            .map(|v| v.detail.clone())
            .collect();
        Ok(Some(BugReport {
            workload_name: workload.name.clone(),
            skeleton: workload.skeleton_string(),
            fs_name: self.spec.name().to_string(),
            crash_point: meta.checkpoint,
            consequence: *consequences
                .last()
                .unwrap_or(&Consequence::TxnAtomicityBroken),
            all_consequences: consequences,
            expected: verdict.expected,
            actual: format!("{} [{}]", verdict.actual, details.join("; ")),
            diffs: Vec::new(),
            write_check_failures: Vec::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::TxnBounds;
    use crate::generator::TxnWorkloadGenerator;
    use b3_fs_cow::CowFsSpec;
    use b3_vfs::KernelEra;

    fn setup() -> (CowFsSpec, CrashMonkeyConfig) {
        (
            CowFsSpec::new(KernelEra::Patched),
            CrashMonkeyConfig::exhaustive_crash_points(),
        )
    }

    #[test]
    fn fixed_engine_is_clean_on_every_tiny_workload() {
        let (spec, config) = setup();
        let harness = AppHarness::new(&spec, config, EngineProfile::fixed());
        for workload in TxnWorkloadGenerator::new(TxnBounds::tiny()) {
            let outcome = harness.test_workload(&workload).unwrap();
            assert!(
                !outcome.found_bug(),
                "fixed engine flagged on {}: {:?}",
                workload.name,
                outcome.bugs
            );
            assert!(outcome.checkpoints_tested > 0);
        }
    }

    #[test]
    fn each_seeded_bug_fires_somewhere_in_tiny() {
        for (engine, expected) in [
            (
                EngineProfile {
                    commit_without_data_fsync: true,
                    ..EngineProfile::fixed()
                },
                Consequence::TxnAtomicityBroken,
            ),
            (
                EngineProfile {
                    torn_commit: true,
                    ..EngineProfile::fixed()
                },
                Consequence::TxnAtomicityBroken,
            ),
            (
                EngineProfile {
                    double_replay: true,
                    ..EngineProfile::fixed()
                },
                Consequence::TxnReplayNotIdempotent,
            ),
        ] {
            let (spec, config) = setup();
            let harness = AppHarness::new(&spec, config, engine);
            let mut seen = Vec::new();
            for workload in TxnWorkloadGenerator::new(TxnBounds::tiny()) {
                let outcome = harness.test_workload(&workload).unwrap();
                for bug in &outcome.bugs {
                    seen.extend(bug.all_consequences.clone());
                }
            }
            assert!(
                seen.contains(&expected),
                "{} should produce {expected:?}, saw {seen:?}",
                engine.describe()
            );
        }
    }
}
