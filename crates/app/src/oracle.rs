//! The transaction oracle: decides whether a recovered KV state is a legal
//! crash outcome for a given transaction history.
//!
//! This is the application-level analogue of CrashMonkey's AutoChecker.
//! Because every committed transaction's effects are a deterministic
//! function of the workload, the oracle can enumerate *every* legal
//! post-crash state up front — the committed-prefix states `S_0 .. S_n` —
//! and classify a recovered state by exact comparison:
//!
//! - **atomicity**: the state must equal some `S_j`, never a partial or
//!   garbled application of a transaction;
//! - **durability**: `j` must not be smaller than the number of
//!   transactions whose commit had fully persisted before the crash point;
//! - **no resurrection**: aborted (or not-yet-committed) transactions must
//!   not appear;
//! - **replay idempotence**: recovering the same crash state twice must
//!   yield the same state.

use std::collections::BTreeMap;

use b3_crashmonkey::Consequence;

use crate::generator::{key_name, value_for, TxnWorkload};

/// The KV state type the oracle compares.
pub type KvState = BTreeMap<String, Vec<u8>>;

/// What the harness observed about one crash point while profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPointMeta {
    /// The block-layer checkpoint id the crash state was built from.
    pub checkpoint: u32,
    /// Number of transactions whose commit had fully returned before this
    /// persistence point.
    pub committed_before: u32,
    /// Workload position (0-based) of the transaction whose commit was in
    /// progress at this persistence point, if any. A recovered state may
    /// legally include it (commit record persisted) or not (crash before).
    pub in_flight: Option<u32>,
}

/// One oracle violation, with a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The taxonomy bucket (one of the four `Txn*` consequences).
    pub consequence: Consequence,
    /// What went wrong, concretely.
    pub detail: String,
}

/// The oracle's verdict for one crash state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleVerdict {
    /// Violations found (empty = the state is a legal crash outcome).
    pub violations: Vec<Violation>,
    /// Human-readable description of the legal states.
    pub expected: String,
    /// Human-readable description of what was recovered.
    pub actual: String,
}

impl OracleVerdict {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The oracle for one transaction workload.
#[derive(Debug, Clone)]
pub struct TxnOracle {
    /// `states[j]` = KV state after the first `j` *committed* transactions.
    states: Vec<KvState>,
    /// Workload positions of the committed transactions, in order.
    committed: Vec<u32>,
    /// For each aborted transaction: every state that would result from
    /// its effects leaking on top of some committed prefix. Resurrection
    /// detection is exact comparison against these.
    resurrection_states: Vec<(u32, KvState)>,
}

impl TxnOracle {
    /// Precomputes the legal crash states of `workload`.
    pub fn new(workload: &TxnWorkload) -> Self {
        let mut states = vec![KvState::new()];
        let mut committed = Vec::new();
        for (position, txn) in workload.txns.iter().enumerate() {
            if !txn.commit {
                continue;
            }
            let mut next = states[states.len() - 1].clone();
            apply_txn(&mut next, workload, position);
            states.push(next);
            committed.push(position as u32);
        }
        let mut resurrection_states = Vec::new();
        for (position, txn) in workload.txns.iter().enumerate() {
            if txn.commit {
                continue;
            }
            for base in &states {
                let mut leaked = base.clone();
                apply_txn(&mut leaked, workload, position);
                if !states.contains(&leaked) {
                    resurrection_states.push((position as u32, leaked));
                }
            }
        }
        TxnOracle {
            states,
            committed,
            resurrection_states,
        }
    }

    /// Number of committed transactions in the workload.
    pub fn num_committed(&self) -> usize {
        self.committed.len()
    }

    /// The state after the first `j` committed transactions.
    pub fn committed_state(&self, j: usize) -> &KvState {
        &self.states[j]
    }

    /// The fully committed final state.
    pub fn final_state(&self) -> &KvState {
        &self.states[self.states.len() - 1]
    }

    /// Classifies the recovery of one crash state. `recovered` is the KV
    /// state after the first open; `reopened` after opening the same file
    /// system a second time (the replay-idempotence probe).
    pub fn classify(
        &self,
        meta: &CrashPointMeta,
        recovered: &KvState,
        reopened: &KvState,
    ) -> OracleVerdict {
        let cb = meta.committed_before as usize;
        let mut violations = Vec::new();
        if reopened != recovered {
            violations.push(Violation {
                consequence: Consequence::TxnReplayNotIdempotent,
                detail: format!(
                    "second recovery diverged: first {}, second {}",
                    render_state(recovered),
                    render_state(reopened)
                ),
            });
        }
        let expected = self.render_expected(meta);
        // Prefix states can repeat (put then delete returns to an earlier
        // state), so legality is membership in the *allowed* set, not the
        // index of the first matching prefix.
        let in_flight_ok = meta.in_flight.is_some() && cb + 1 < self.states.len();
        let allowed =
            recovered == &self.states[cb] || (in_flight_ok && recovered == &self.states[cb + 1]);
        if !allowed {
            match self.states.iter().position(|state| state == recovered) {
                Some(j) if j < cb => {
                    violations.push(Violation {
                        consequence: Consequence::TxnDurabilityLoss,
                        detail: format!(
                            "state is S_{j} but {cb} transactions had \
                             committed before the crash point"
                        ),
                    });
                }
                Some(j) => {
                    violations.push(Violation {
                        consequence: Consequence::TxnResurrection,
                        detail: format!(
                            "state is S_{j}: transactions that had not \
                             committed by the crash point are visible"
                        ),
                    });
                }
                None => {
                    if let Some((position, _)) = self
                        .resurrection_states
                        .iter()
                        .find(|(_, state)| state == recovered)
                    {
                        violations.push(Violation {
                            consequence: Consequence::TxnResurrection,
                            detail: format!(
                                "aborted transaction {} is visible in the \
                                 recovered state",
                                position + 1
                            ),
                        });
                    } else {
                        violations.push(Violation {
                            consequence: Consequence::TxnAtomicityBroken,
                            detail: format!(
                                "recovered state {} matches no committed \
                                 prefix: a transaction was applied partially \
                                 or with garbled values",
                                render_state(recovered)
                            ),
                        });
                    }
                }
            }
        }
        OracleVerdict {
            violations,
            expected,
            actual: render_state(recovered),
        }
    }

    /// Renders the set of states legal at `meta` for bug reports.
    fn render_expected(&self, meta: &CrashPointMeta) -> String {
        let cb = meta.committed_before as usize;
        let mut legal = vec![format!("S_{cb} = {}", render_state(&self.states[cb]))];
        if meta.in_flight.is_some() && cb + 1 < self.states.len() {
            legal.push(format!(
                "S_{} = {} (in-flight commit persisted)",
                cb + 1,
                render_state(&self.states[cb + 1])
            ));
        }
        legal.join(" or ")
    }
}

/// Applies transaction `position` of `workload` to `state` — the reference
/// semantics the engine must match.
pub fn apply_txn(state: &mut KvState, workload: &TxnWorkload, position: usize) {
    let txn = &workload.txns[position];
    for (op_index, op) in txn.ops.iter().enumerate() {
        let key = key_name(op.key);
        match op.kind {
            crate::bounds::TxnOpKind::Put => {
                state.insert(key, value_for(position, op_index));
            }
            crate::bounds::TxnOpKind::Append => {
                state
                    .entry(key)
                    .or_default()
                    .extend_from_slice(&value_for(position, op_index));
            }
            crate::bounds::TxnOpKind::Delete => {
                state.remove(&key);
            }
        }
    }
}

/// Deterministic human-readable rendering of a KV state; garbage bytes
/// (e.g. zero-filled unpersisted values) stay visible through the escaped
/// debug form.
pub fn render_state(state: &KvState) -> String {
    if state.is_empty() {
        return "(empty)".to_string();
    }
    state
        .iter()
        .map(|(key, value)| format!("{key}={:?}", String::from_utf8_lossy(value)))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::TxnBounds;
    use crate::generator::TxnWorkloadGenerator;

    fn meta(checkpoint: u32, committed_before: u32, in_flight: Option<u32>) -> CrashPointMeta {
        CrashPointMeta {
            checkpoint,
            committed_before,
            in_flight,
        }
    }

    #[test]
    fn prefix_states_are_legal_and_later_states_resurrect() {
        let workload = TxnWorkloadGenerator::decode(&TxnBounds::smoke(), 5000);
        let oracle = TxnOracle::new(&workload);
        for j in 0..=oracle.num_committed() {
            let state = oracle.committed_state(j).clone();
            let verdict = oracle.classify(&meta(0, j as u32, None), &state, &state);
            assert!(verdict.is_clean(), "S_{j} must be legal: {verdict:?}");
        }
        if oracle.num_committed() >= 1 {
            let last = oracle.final_state().clone();
            let verdict = oracle.classify(&meta(0, 0, None), &last, &last);
            if oracle.committed_state(0) != oracle.final_state() {
                assert_eq!(
                    verdict.violations[0].consequence,
                    Consequence::TxnResurrection
                );
            }
        }
    }

    #[test]
    fn durability_atomicity_and_idempotence_fire() {
        // Workload 0 of tiny: single committed put of k0 := v1.1.
        let workload = TxnWorkloadGenerator::decode(&TxnBounds::tiny(), 0);
        let oracle = TxnOracle::new(&workload);
        let empty = KvState::new();
        let full = oracle.final_state().clone();

        // Committed txn lost.
        let verdict = oracle.classify(&meta(0, 1, None), &empty, &empty);
        assert_eq!(
            verdict.violations[0].consequence,
            Consequence::TxnDurabilityLoss
        );

        // Garbled value: right key, wrong bytes.
        let mut garbled = KvState::new();
        garbled.insert("k0".to_string(), vec![0, 0, 0, 0]);
        let verdict = oracle.classify(&meta(0, 1, None), &garbled, &garbled);
        assert_eq!(
            verdict.violations[0].consequence,
            Consequence::TxnAtomicityBroken
        );

        // Replay not idempotent: second open diverges.
        let verdict = oracle.classify(&meta(0, 1, None), &full, &garbled);
        assert!(verdict
            .violations
            .iter()
            .any(|v| v.consequence == Consequence::TxnReplayNotIdempotent));

        // In-flight commit may be present or absent.
        assert!(oracle
            .classify(&meta(0, 0, Some(0)), &empty, &empty)
            .is_clean());
        assert!(oracle
            .classify(&meta(0, 0, Some(0)), &full, &full)
            .is_clean());
        // ...but without an in-flight commit, the full state is phantom.
        let verdict = oracle.classify(&meta(0, 0, None), &full, &full);
        assert_eq!(
            verdict.violations[0].consequence,
            Consequence::TxnResurrection
        );
    }

    #[test]
    fn aborted_transactions_must_not_resurrect() {
        // Find a smoke workload whose first txn aborts with a put.
        let bounds = TxnBounds::smoke();
        let workload = TxnWorkloadGenerator::new(bounds)
            .find(|w| {
                w.txns.len() == 1
                    && !w.txns[0].commit
                    && w.txns[0]
                        .ops
                        .iter()
                        .any(|op| op.kind == crate::bounds::TxnOpKind::Put)
            })
            .unwrap();
        let oracle = TxnOracle::new(&workload);
        let mut leaked = KvState::new();
        apply_txn(&mut leaked, &workload, 0);
        let verdict = oracle.classify(&meta(0, 0, None), &leaked, &leaked);
        assert_eq!(
            verdict.violations[0].consequence,
            Consequence::TxnResurrection
        );
    }
}
