//! The reference WAL+KV storage engine under test.
//!
//! [`WalKv`] is deliberately small and deliberately classic: a write-ahead
//! log of commit records, an append-only value heap, and a compacted
//! snapshot, stored through the in-tree [`FileSystem`] trait. It is not a
//! production engine — it exists to have *known-correct* crash semantics
//! that [`EngineProfile`] can selectively break, reproducing the three
//! application-level crash-consistency failure classes the FIRST and
//! WITCHER papers catalogue (see PAPERS.md):
//!
//! 1. **commit-without-data-fsync** — the commit record reaches the device
//!    before the value bytes it points at are durable.
//! 2. **torn-commit** — the commit record is written in two device-visible
//!    chunks with a persistence point in between, and recovery applies the
//!    parseable prefix instead of discarding the torn record.
//! 3. **double-replay** — compaction stamps the snapshot with a stale
//!    `applied_seq`, so the next recovery replays the WAL again.
//!
//! The on-disk record grammar is documented in `docs/FORMATS.md` and
//! enforced by `tests/docs.rs` against [`encode_commit_record`].

use std::collections::BTreeMap;

use b3_vfs::fs::{FileSystem, WriteMode};
use b3_vfs::{FsError, FsResult};

/// File holding the commit records (the write-ahead log proper).
pub const COMMIT_LOG: &str = "commit.log";
/// Append-only heap of raw value payloads referenced by commit records.
pub const DATA_LOG: &str = "data.log";
/// Compacted snapshot of the KV state as of `applied_seq`.
pub const SNAPSHOT: &str = "snapshot.db";

/// Magic prefix of every commit record ("B3 App Commit").
pub const COMMIT_MAGIC: [u8; 4] = *b"B3AC";
/// Magic prefix of the snapshot file ("B3 App Snapshot").
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"B3AS";

/// Op kind byte inside a commit record: set `key` to the referenced bytes.
pub const OP_PUT: u8 = 1;
/// Op kind byte: remove `key`.
pub const OP_DELETE: u8 = 2;
/// Op kind byte: append the referenced bytes to `key` (creating it empty
/// first if absent). Append is the non-idempotent op that makes the
/// double-replay bug observable.
pub const OP_APPEND: u8 = 3;

/// Sanity bounds on parsed records; anything larger is treated as
/// corruption rather than trusted (a torn or garbage length field must not
/// drive a multi-gigabyte allocation).
const MAX_KEY_LEN: u32 = 4096;
const MAX_VALUE_LEN: u64 = 1 << 20;
const MAX_OPS: u32 = 4096;

/// Which seeded bugs the engine is built with. `EngineProfile::fixed()` is
/// the correct engine; each flag independently re-introduces one classic
/// application-level crash-consistency bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineProfile {
    /// Skip the `fsync(data.log)` barrier before writing the commit record,
    /// so a crash can persist the record but not the values it points at
    /// (FIRST's motivating atomicity bug; SNIPPETS.md snippets 1–2).
    pub commit_without_data_fsync: bool,
    /// Write the commit record in two chunks with a persistence point in
    /// between, and recover with lenient prefix parsing instead of
    /// whole-record CRC validation — a crash between the chunks applies a
    /// partial transaction.
    pub torn_commit: bool,
    /// Stamp the compacted snapshot with the *pre-replay* `applied_seq`,
    /// so the WAL is replayed again on every subsequent open (appends are
    /// applied twice: replay is no longer idempotent).
    pub double_replay: bool,
}

impl EngineProfile {
    /// The correct engine: no seeded bugs.
    pub fn fixed() -> Self {
        EngineProfile::default()
    }

    /// True when no seeded bug is enabled.
    pub fn is_fixed(&self) -> bool {
        *self == EngineProfile::default()
    }

    /// Stable human-readable name: `fixed` or a comma-joined flag list.
    pub fn describe(&self) -> String {
        if self.is_fixed() {
            return "fixed".to_string();
        }
        let mut flags = Vec::new();
        if self.commit_without_data_fsync {
            flags.push("no-data-fsync");
        }
        if self.torn_commit {
            flags.push("torn-commit");
        }
        if self.double_replay {
            flags.push("double-replay");
        }
        flags.join(",")
    }

    /// Compact wire form (one bit per flag).
    pub fn bits(&self) -> u8 {
        u8::from(self.commit_without_data_fsync)
            | u8::from(self.torn_commit) << 1
            | u8::from(self.double_replay) << 2
    }

    /// Inverse of [`EngineProfile::bits`].
    pub fn from_bits(bits: u8) -> FsResult<Self> {
        if bits > 0b111 {
            return Err(FsError::Corrupted(format!(
                "unknown engine profile bits {bits:#04x}"
            )));
        }
        Ok(EngineProfile {
            commit_without_data_fsync: bits & 0b001 != 0,
            torn_commit: bits & 0b010 != 0,
            double_replay: bits & 0b100 != 0,
        })
    }

    /// Parses the [`EngineProfile::describe`] form: `fixed` or a comma list
    /// of `no-data-fsync`, `torn-commit`, `double-replay`.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "fixed" {
            return Ok(EngineProfile::fixed());
        }
        let mut profile = EngineProfile::fixed();
        for flag in text.split(',') {
            match flag.trim() {
                "no-data-fsync" => profile.commit_without_data_fsync = true,
                "torn-commit" => profile.torn_commit = true,
                "double-replay" => profile.double_replay = true,
                other => return Err(format!("unknown engine flag {other:?}")),
            }
        }
        Ok(profile)
    }
}

/// One op inside an encoded commit record. Values live in `data.log`; the
/// record references them by offset and length so the WAL itself stays
/// small (and so the commit-without-data-fsync bug has something to lose).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordOp {
    /// [`OP_PUT`], [`OP_DELETE`] or [`OP_APPEND`].
    pub kind: u8,
    /// The key the op targets.
    pub key: String,
    /// Offset of the value payload in `data.log` (puts and appends only).
    pub val_off: u64,
    /// Length of the value payload (puts and appends only).
    pub val_len: u64,
}

/// An op staged in memory before commit.
#[derive(Debug, Clone, PartialEq, Eq)]
enum StagedOp {
    Put { key: String, value: Vec<u8> },
    Append { key: String, value: Vec<u8> },
    Delete { key: String },
}

/// FNV-1a 64-bit over `bytes` — the record and snapshot checksum.
pub fn record_crc(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one commit record. Layout (little-endian, see docs/FORMATS.md):
///
/// ```text
/// "B3AC" | seq u64 | n_ops u32 | op* | crc u64
/// op := kind u8 | key_len u32 | key | (puts/appends: val_len u64 | val_off u64)
/// ```
///
/// `crc` is FNV-1a 64 over every preceding byte of the record.
pub fn encode_commit_record(seq: u64, ops: &[RecordOp]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&COMMIT_MAGIC);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        encode_record_op(&mut buf, op);
    }
    let crc = record_crc(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn encode_record_op(buf: &mut Vec<u8>, op: &RecordOp) {
    buf.push(op.kind);
    buf.extend_from_slice(&(op.key.len() as u32).to_le_bytes());
    buf.extend_from_slice(op.key.as_bytes());
    if op.kind != OP_DELETE {
        buf.extend_from_slice(&op.val_len.to_le_bytes());
        buf.extend_from_slice(&op.val_off.to_le_bytes());
    }
}

/// A byte cursor over an in-memory buffer; every accessor returns `None`
/// past the end, which the parsers treat as "torn here".
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        if end > self.buf.len() {
            return None;
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn str(&mut self, len: u32) -> Option<String> {
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// Result of parsing one commit record out of the WAL byte stream.
struct ParsedRecord {
    seq: u64,
    ops: Vec<RecordOp>,
    /// True when the full record, including a valid CRC, was present.
    complete: bool,
}

/// Parses the next record. `lenient` is the torn-commit recovery mode: a
/// truncated record yields its parseable op prefix (`complete == false`)
/// instead of being rejected. Returns `None` when the stream ends cleanly
/// or the next bytes are not a record.
fn parse_record(reader: &mut Reader<'_>, lenient: bool) -> Option<ParsedRecord> {
    let start = reader.pos;
    let magic = reader.take(4)?;
    if magic != COMMIT_MAGIC {
        return None;
    }
    let seq = reader.u64()?;
    let n_ops = reader.u32().filter(|&n| n <= MAX_OPS)?;
    let mut ops = Vec::new();
    let mut torn = false;
    for _ in 0..n_ops {
        let Some(op) = parse_record_op(reader) else {
            torn = true;
            break;
        };
        ops.push(op);
    }
    if torn {
        return lenient.then_some(ParsedRecord {
            seq,
            ops,
            complete: false,
        });
    }
    let body_end = reader.pos;
    let Some(crc) = reader.u64() else {
        // Record body parsed but the CRC itself is missing: torn in the
        // final chunk.
        return lenient.then_some(ParsedRecord {
            seq,
            ops,
            complete: false,
        });
    };
    if !lenient && crc != record_crc(&reader.buf[start..body_end]) {
        return None;
    }
    Some(ParsedRecord {
        seq,
        ops,
        complete: true,
    })
}

fn parse_record_op(reader: &mut Reader<'_>) -> Option<RecordOp> {
    let kind = reader.u8()?;
    if !matches!(kind, OP_PUT | OP_DELETE | OP_APPEND) {
        return None;
    }
    let key_len = reader.u32().filter(|&n| n <= MAX_KEY_LEN)?;
    let key = reader.str(key_len)?;
    let (val_len, val_off) = if kind == OP_DELETE {
        (0, 0)
    } else {
        let len = reader.u64().filter(|&n| n <= MAX_VALUE_LEN)?;
        let off = reader.u64()?;
        (len, off)
    };
    Some(RecordOp {
        kind,
        key,
        val_off,
        val_len,
    })
}

fn encode_snapshot(applied_seq: u64, state: &BTreeMap<String, Vec<u8>>) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&applied_seq.to_le_bytes());
    buf.extend_from_slice(&(state.len() as u32).to_le_bytes());
    for (key, value) in state {
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(key.as_bytes());
        buf.extend_from_slice(&(value.len() as u64).to_le_bytes());
        buf.extend_from_slice(value);
    }
    let crc = record_crc(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Parses a snapshot; any corruption (bad magic, truncation, CRC mismatch)
/// degrades to the empty pre-history state rather than failing, because a
/// recovering engine must come up from whatever the crash left behind.
fn parse_snapshot(bytes: &[u8]) -> (BTreeMap<String, Vec<u8>>, u64) {
    let fallback = (BTreeMap::new(), 0);
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 + 4 + 8 || bytes[..4] != SNAPSHOT_MAGIC {
        return fallback;
    }
    let body_end = bytes.len() - 8;
    let mut crc_reader = Reader::new(&bytes[body_end..]);
    if crc_reader.u64() != Some(record_crc(&bytes[..body_end])) {
        return fallback;
    }
    let mut reader = Reader::new(&bytes[..body_end]);
    let _magic = reader.take(4);
    let Some(applied_seq) = reader.u64() else {
        return fallback;
    };
    let Some(count) = reader.u32() else {
        return fallback;
    };
    let mut state = BTreeMap::new();
    for _ in 0..count {
        let Some(key_len) = reader.u32().filter(|&n| n <= MAX_KEY_LEN) else {
            return fallback;
        };
        let Some(key) = reader.str(key_len) else {
            return fallback;
        };
        let Some(val_len) = reader.u64().filter(|&n| n <= MAX_VALUE_LEN) else {
            return fallback;
        };
        let Some(value) = reader.take(val_len as usize) else {
            return fallback;
        };
        state.insert(key, value.to_vec());
    }
    (state, applied_seq)
}

/// The reference WAL+KV engine. All methods take the file system as a
/// parameter — the engine holds only logical state, so one instance can be
/// recovered on a crash-state mount and dropped without ceremony.
#[derive(Debug)]
pub struct WalKv {
    profile: EngineProfile,
    state: BTreeMap<String, Vec<u8>>,
    staged: Vec<StagedOp>,
    next_seq: u64,
    wal_tail: u64,
    data_tail: u64,
}

impl WalKv {
    /// Formats a freshly made file system for the engine: creates the three
    /// files, writes the empty initial snapshot, and syncs.
    pub fn format(fs: &mut dyn FileSystem) -> FsResult<()> {
        fs.create(COMMIT_LOG)?;
        fs.create(DATA_LOG)?;
        fs.create(SNAPSHOT)?;
        let snapshot = encode_snapshot(0, &BTreeMap::new());
        fs.write(SNAPSHOT, 0, &snapshot, WriteMode::Buffered)?;
        fs.sync()
    }

    /// Opens (recovers) the engine from whatever is on `fs`: loads the
    /// snapshot, replays committed WAL records past its `applied_seq`, and
    /// compacts. Never fails on *corrupt content* — a crash can leave any
    /// byte garbage and recovery must still come up — only on file-system
    /// errors (e.g. the store was never formatted).
    pub fn open(fs: &mut dyn FileSystem, profile: EngineProfile) -> FsResult<WalKv> {
        let (mut state, applied_seq) = parse_snapshot(&fs.read_all(SNAPSHOT)?);
        let wal = fs.read_all(COMMIT_LOG)?;
        let mut reader = Reader::new(&wal);
        let mut last_seq = applied_seq;
        let mut max_seq = applied_seq;
        let mut replayed = false;
        while let Some(record) = parse_record(&mut reader, profile.torn_commit) {
            if record.seq > applied_seq {
                for op in &record.ops {
                    apply_record_op(fs, &mut state, op)?;
                }
                last_seq = last_seq.max(record.seq);
                replayed = true;
            }
            max_seq = max_seq.max(record.seq);
            if !record.complete {
                break;
            }
        }
        if replayed {
            // Compaction: fold the replayed records into the snapshot so the
            // next open starts from here. The double-replay bug stamps the
            // *pre-replay* sequence number, leaving the WAL live.
            let stamp = if profile.double_replay {
                applied_seq
            } else {
                last_seq
            };
            let snapshot = encode_snapshot(stamp, &state);
            fs.write(SNAPSHOT, 0, &snapshot, WriteMode::Buffered)?;
            fs.truncate(SNAPSHOT, snapshot.len() as u64)?;
            fs.fsync(SNAPSHOT)?;
        }
        Ok(WalKv {
            profile,
            state,
            staged: Vec::new(),
            next_seq: max_seq + 1,
            wal_tail: fs.metadata(COMMIT_LOG)?.size,
            data_tail: fs.metadata(DATA_LOG)?.size,
        })
    }

    /// The profile this engine was opened with.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// Stages `key := value` in the current transaction.
    pub fn put(&mut self, key: &str, value: &[u8]) {
        self.staged.push(StagedOp::Put {
            key: key.to_string(),
            value: value.to_vec(),
        });
    }

    /// Stages an append of `value` to `key` in the current transaction.
    pub fn append(&mut self, key: &str, value: &[u8]) {
        self.staged.push(StagedOp::Append {
            key: key.to_string(),
            value: value.to_vec(),
        });
    }

    /// Stages a delete of `key` in the current transaction.
    pub fn delete(&mut self, key: &str) {
        self.staged.push(StagedOp::Delete {
            key: key.to_string(),
        });
    }

    /// Discards the staged transaction without touching the device.
    pub fn abort(&mut self) {
        self.staged.clear();
    }

    /// Number of ops staged in the open transaction.
    pub fn staged_ops(&self) -> usize {
        self.staged.len()
    }

    /// Commits the staged transaction: appends value payloads to
    /// `data.log`, makes them durable, then appends and makes durable one
    /// commit record. The seeded bugs each subvert one step — see
    /// [`EngineProfile`].
    pub fn commit(&mut self, fs: &mut dyn FileSystem) -> FsResult<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let staged = std::mem::take(&mut self.staged);
        // 1. Value payloads into the heap.
        let mut ops = Vec::with_capacity(staged.len());
        let mut wrote_data = false;
        for op in &staged {
            let record_op = match op {
                StagedOp::Put { key, value } | StagedOp::Append { key, value } => {
                    let val_off = self.data_tail;
                    fs.write(DATA_LOG, val_off, value, WriteMode::Buffered)?;
                    self.data_tail += value.len() as u64;
                    wrote_data = true;
                    RecordOp {
                        kind: if matches!(op, StagedOp::Put { .. }) {
                            OP_PUT
                        } else {
                            OP_APPEND
                        },
                        key: key.clone(),
                        val_off,
                        val_len: value.len() as u64,
                    }
                }
                StagedOp::Delete { key } => RecordOp {
                    kind: OP_DELETE,
                    key: key.clone(),
                    val_off: 0,
                    val_len: 0,
                },
            };
            ops.push(record_op);
        }
        // 2. The data barrier — the step the no-data-fsync bug skips.
        if wrote_data && !self.profile.commit_without_data_fsync {
            fs.fsync(DATA_LOG)?;
        }
        // 3. The commit record.
        let record = encode_commit_record(self.next_seq, &ops);
        if self.profile.torn_commit && ops.len() > 1 {
            // Torn write: first chunk (header + first op) reaches the
            // device at its own persistence point before the rest.
            let mut split = Vec::new();
            split.extend_from_slice(&COMMIT_MAGIC);
            split.extend_from_slice(&self.next_seq.to_le_bytes());
            split.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            encode_record_op(&mut split, &ops[0]);
            let split_len = split.len();
            fs.write(
                COMMIT_LOG,
                self.wal_tail,
                &record[..split_len],
                WriteMode::Buffered,
            )?;
            fs.fsync(COMMIT_LOG)?;
            fs.write(
                COMMIT_LOG,
                self.wal_tail + split_len as u64,
                &record[split_len..],
                WriteMode::Buffered,
            )?;
        } else {
            fs.write(COMMIT_LOG, self.wal_tail, &record, WriteMode::Buffered)?;
        }
        fs.fsync(COMMIT_LOG)?;
        self.wal_tail += record.len() as u64;
        // 4. Apply to the in-memory view.
        for op in staged {
            match op {
                StagedOp::Put { key, value } => {
                    self.state.insert(key, value);
                }
                StagedOp::Append { key, value } => {
                    self.state.entry(key).or_default().extend_from_slice(&value);
                }
                StagedOp::Delete { key } => {
                    self.state.remove(&key);
                }
            }
        }
        self.next_seq += 1;
        Ok(())
    }

    /// The current committed KV state (staged ops excluded).
    pub fn dump(&self) -> BTreeMap<String, Vec<u8>> {
        self.state.clone()
    }
}

/// Applies one replayed record op, fetching value payloads from the heap.
/// A short read (the payload was never made durable — the no-data-fsync
/// bug) zero-fills, which is exactly how the garbage manifests.
fn apply_record_op(
    fs: &dyn FileSystem,
    state: &mut BTreeMap<String, Vec<u8>>,
    op: &RecordOp,
) -> FsResult<()> {
    match op.kind {
        OP_PUT | OP_APPEND => {
            let mut value = fs.read(DATA_LOG, op.val_off, op.val_len)?;
            value.resize(op.val_len as usize, 0);
            if op.kind == OP_PUT {
                state.insert(op.key.clone(), value);
            } else {
                state
                    .entry(op.key.clone())
                    .or_default()
                    .extend_from_slice(&value);
            }
        }
        OP_DELETE => {
            state.remove(&op.key);
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_bits_round_trip() {
        for bits in 0..=0b111u8 {
            let profile = EngineProfile::from_bits(bits).unwrap();
            assert_eq!(profile.bits(), bits);
            assert_eq!(
                EngineProfile::parse(&profile.describe()),
                Ok(profile),
                "describe/parse round trip for {bits:#05b}"
            );
        }
        assert!(EngineProfile::from_bits(0b1000).is_err());
        assert!(EngineProfile::parse("frobnicate").is_err());
    }

    #[test]
    fn record_round_trips_through_strict_parser() {
        let ops = vec![
            RecordOp {
                kind: OP_PUT,
                key: "k0".to_string(),
                val_off: 0,
                val_len: 4,
            },
            RecordOp {
                kind: OP_DELETE,
                key: "k1".to_string(),
                val_off: 0,
                val_len: 0,
            },
        ];
        let bytes = encode_commit_record(7, &ops);
        let mut reader = Reader::new(&bytes);
        let record = parse_record(&mut reader, false).unwrap();
        assert_eq!(record.seq, 7);
        assert_eq!(record.ops, ops);
        assert!(record.complete);
        assert_eq!(reader.pos, bytes.len());
    }

    #[test]
    fn corrupt_crc_is_rejected_strictly_but_prefix_parses_leniently() {
        let ops = vec![
            RecordOp {
                kind: OP_APPEND,
                key: "k".to_string(),
                val_off: 8,
                val_len: 3,
            },
            RecordOp {
                kind: OP_DELETE,
                key: "k2".to_string(),
                val_off: 0,
                val_len: 0,
            },
        ];
        let bytes = encode_commit_record(3, &ops);
        // Truncate mid-second-op: strict rejects, lenient applies op 1.
        let torn = &bytes[..bytes.len() - 12];
        assert!(parse_record(&mut Reader::new(torn), false).is_none());
        let lenient = parse_record(&mut Reader::new(torn), true).unwrap();
        assert_eq!(lenient.ops.len(), 1);
        assert!(!lenient.complete);
        // Flip a CRC byte: strict rejects the whole record.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(parse_record(&mut Reader::new(&bad), false).is_none());
    }

    #[test]
    fn snapshot_round_trips_and_degrades_on_corruption() {
        let mut state = BTreeMap::new();
        state.insert("alpha".to_string(), b"one".to_vec());
        state.insert("beta".to_string(), Vec::new());
        let bytes = encode_snapshot(42, &state);
        assert_eq!(parse_snapshot(&bytes), (state, 42));
        let mut bad = bytes;
        bad[6] ^= 0x01;
        assert_eq!(parse_snapshot(&bad), (BTreeMap::new(), 0));
        assert_eq!(parse_snapshot(b"short"), (BTreeMap::new(), 0));
    }
}
