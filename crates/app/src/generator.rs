//! Odometer-style enumeration of transaction workloads.
//!
//! Unlike `b3_ace::WorkloadGenerator` (which advances odometer state), the
//! transaction space is small and regular enough to *decode* any workload
//! directly from its index. That makes `skip_to` and sharding exact by
//! construction: workload `i` is the same bytes no matter which worker, on
//! which machine, at which resume point, produces it.

use crate::bounds::{TxnBounds, TxnOpKind, TxnShard};

/// One operation in a transaction: an op kind applied to key `k{key}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOp {
    /// What to do.
    pub kind: TxnOpKind,
    /// Which key (index into the bounded key set; the engine sees `k{key}`).
    pub key: u32,
}

/// One transaction: a non-empty op sequence and its terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// The staged operations, in order.
    pub ops: Vec<TxnOp>,
    /// True to commit, false to abort.
    pub commit: bool,
}

/// A fully decoded transaction workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnWorkload {
    /// `{prefix}-{index+1:07}` — 1-based and zero-padded so lexicographic
    /// order equals enumeration order (bug-group exemplars depend on it).
    pub name: String,
    /// 0-based position in the bounded space.
    pub index: u64,
    /// The transactions, in execution order.
    pub txns: Vec<Txn>,
}

impl TxnWorkload {
    /// The grouping skeleton: per-transaction op letters plus `+` (commit)
    /// or `-` (abort), transactions joined with `|` — e.g. `PA+|D-`.
    pub fn skeleton_string(&self) -> String {
        self.txns
            .iter()
            .map(|txn| {
                let mut part: String = txn.ops.iter().map(|op| op.kind.letter()).collect();
                part.push(if txn.commit { '+' } else { '-' });
                part
            })
            .collect::<Vec<_>>()
            .join("|")
    }
}

/// The key name the engine sees for key index `key`.
pub fn key_name(key: u32) -> String {
    format!("k{key}")
}

/// The value bytes written by op `op` (0-based) of transaction `txn`
/// (0-based): `v{txn+1}.{op+1}`. Unique per position, so the oracle can
/// recognise exactly which writes survived a crash.
pub fn value_for(txn: usize, op: usize) -> Vec<u8> {
    format!("v{}.{}", txn + 1, op + 1).into_bytes()
}

/// Iterator over a contiguous index range of a [`TxnBounds`] space.
#[derive(Debug, Clone)]
pub struct TxnWorkloadGenerator {
    bounds: TxnBounds,
    cursor: u64,
    end: u64,
}

impl TxnWorkloadGenerator {
    /// Enumerates the whole space.
    pub fn new(bounds: TxnBounds) -> Self {
        let end = bounds.candidates();
        TxnWorkloadGenerator {
            bounds,
            cursor: 0,
            end,
        }
    }

    /// Enumerates exactly one shard.
    pub fn for_shard(bounds: TxnBounds, shard: &TxnShard) -> Self {
        TxnWorkloadGenerator {
            bounds,
            cursor: shard.start,
            end: shard.end,
        }
    }

    /// Enumerates the clamped range `[start, end)`.
    pub fn with_range(bounds: TxnBounds, start: u64, end: u64) -> Self {
        let total = bounds.candidates();
        TxnWorkloadGenerator {
            bounds,
            cursor: start.min(total),
            end: end.min(total),
        }
    }

    /// Jumps the cursor to absolute index `index` (clamped to the range
    /// end). Exact: the next item is workload `index`.
    pub fn skip_to(&mut self, index: u64) {
        self.cursor = index.min(self.end);
    }

    /// The absolute index of the next workload to be produced.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The bounds this generator enumerates.
    pub fn bounds(&self) -> &TxnBounds {
        &self.bounds
    }

    /// Exact size of the space (named for parity with
    /// `b3_ace::WorkloadGenerator::estimate_candidates`; for transaction
    /// spaces the estimate is exact).
    pub fn estimate_candidates(bounds: &TxnBounds) -> u64 {
        bounds.candidates()
    }

    /// Decodes workload `index` of `bounds` without constructing an
    /// iterator. `index` must be in range.
    pub fn decode(bounds: &TxnBounds, index: u64) -> TxnWorkload {
        let total = bounds.candidates();
        assert!(index < total, "workload index {index} out of 0..{total}");
        let m = bounds.per_txn();
        // How many transactions: the space is ordered by length, so peel
        // off the m^1, m^2, … blocks.
        let mut rem = u128::from(index);
        let mut num_txns = 1u32;
        let mut block = m;
        while rem >= block {
            rem -= block;
            num_txns += 1;
            block = block.saturating_mul(m);
        }
        // Within the block: most-significant-digit-first base-m odometer.
        let mut txns = Vec::with_capacity(num_txns as usize);
        let mut divisor = m.saturating_pow(num_txns - 1);
        for _ in 0..num_txns {
            let digit = rem / divisor;
            rem %= divisor;
            divisor = (divisor / m).max(1);
            txns.push(Self::decode_txn(bounds, digit));
        }
        TxnWorkload {
            name: format!("{}-{:07}", bounds.name_prefix, index + 1),
            index,
            txns,
        }
    }

    /// Decodes one base-`per_txn` digit into a transaction.
    fn decode_txn(bounds: &TxnBounds, digit: u128) -> Txn {
        let terminators = bounds.terminators();
        let commit = digit.is_multiple_of(terminators);
        let mut rem = digit / terminators;
        let p = bounds.per_op();
        let mut num_ops = 1u32;
        let mut block = p;
        while rem >= block {
            rem -= block;
            num_ops += 1;
            block = block.saturating_mul(p);
        }
        let kinds = bounds.ops.len() as u128;
        let mut ops = Vec::with_capacity(num_ops as usize);
        let mut divisor = p.saturating_pow(num_ops - 1);
        for _ in 0..num_ops {
            let op_digit = rem / divisor;
            rem %= divisor;
            divisor = (divisor / p).max(1);
            ops.push(TxnOp {
                kind: bounds.ops[(op_digit % kinds) as usize],
                key: (op_digit / kinds) as u32,
            });
        }
        Txn { ops, commit }
    }
}

impl Iterator for TxnWorkloadGenerator {
    type Item = TxnWorkload;

    fn next(&mut self) -> Option<TxnWorkload> {
        if self.cursor >= self.end {
            return None;
        }
        let workload = Self::decode(&self.bounds, self.cursor);
        self.cursor += 1;
        Some(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_dense_ordered_and_unique() {
        let bounds = TxnBounds::smoke();
        let all: Vec<TxnWorkload> = TxnWorkloadGenerator::new(bounds.clone()).collect();
        assert_eq!(all.len() as u64, bounds.candidates());
        for (position, workload) in all.iter().enumerate() {
            assert_eq!(workload.index, position as u64);
            assert_eq!(workload.name, format!("app-smoke-{:07}", position + 1));
            assert!(!workload.txns.is_empty());
            for txn in &workload.txns {
                assert!(!txn.ops.is_empty());
                assert!(txn.ops.len() <= bounds.max_ops_per_txn as usize);
                for op in &txn.ops {
                    assert!(op.key < bounds.keys);
                }
            }
        }
        let mut sorted_names: Vec<&String> = all.iter().map(|w| &w.name).collect();
        sorted_names.dedup();
        assert_eq!(sorted_names.len(), all.len(), "names are unique");
        assert!(
            sorted_names.windows(2).all(|pair| pair[0] < pair[1]),
            "lexicographic name order equals enumeration order"
        );
    }

    #[test]
    fn tiny_space_first_and_last_workloads() {
        let bounds = TxnBounds::tiny();
        let all: Vec<TxnWorkload> = TxnWorkloadGenerator::new(bounds).collect();
        assert_eq!(all.len(), 20);
        // Index 0: single put of key 0, committed.
        assert_eq!(all[0].skeleton_string(), "P+");
        assert_eq!(
            all[0].txns[0].ops,
            vec![TxnOp {
                kind: TxnOpKind::Put,
                key: 0
            }]
        );
        // Every tiny workload commits (allow_abort = false).
        assert!(all.iter().all(|w| w.txns.iter().all(|t| t.commit)));
        // The two-op block covers all 16 combinations.
        assert_eq!(all.iter().filter(|w| w.txns[0].ops.len() == 2).count(), 16);
    }

    #[test]
    fn skeletons_cover_commit_and_abort() {
        let bounds = TxnBounds::smoke();
        let all: Vec<TxnWorkload> = TxnWorkloadGenerator::new(bounds).collect();
        assert!(all.iter().any(|w| w.skeleton_string().contains('+')));
        assert!(all.iter().any(|w| w.skeleton_string().contains('-')));
        assert!(all.iter().any(|w| w.skeleton_string().contains('|')));
    }
}
