//! Bounded enumeration space for transaction workloads.
//!
//! [`TxnBounds`] plays the role `b3_ace::Bounds` plays for syscall
//! workloads: it defines a finite, totally ordered space of transaction
//! sequences, counts it exactly, and splits it into contiguous shards so
//! the sweep/distrib/fleet stack can fan it out unchanged. Enumeration
//! order is the odometer order the decode in
//! [`generator`](crate::generator) realises: workload index `i` always
//! decodes to the same transaction sequence, on any worker.

use b3_vfs::codec::{Decoder, Encoder};
use b3_vfs::{FsError, FsResult};

/// One kind of KV operation inside a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TxnOpKind {
    /// `put(key, value)` — idempotent overwrite.
    Put,
    /// `append(key, value)` — the non-idempotent op; what double replay
    /// visibly corrupts.
    Append,
    /// `delete(key)`.
    Delete,
}

impl TxnOpKind {
    /// One-letter skeleton code.
    pub fn letter(&self) -> char {
        match self {
            TxnOpKind::Put => 'P',
            TxnOpKind::Append => 'A',
            TxnOpKind::Delete => 'D',
        }
    }

    /// Stable wire code (matches the engine's record op kinds).
    pub fn code(&self) -> u8 {
        match self {
            TxnOpKind::Put => 1,
            TxnOpKind::Delete => 2,
            TxnOpKind::Append => 3,
        }
    }

    /// Inverse of [`TxnOpKind::code`].
    pub fn from_code(code: u8) -> FsResult<Self> {
        match code {
            1 => Ok(TxnOpKind::Put),
            2 => Ok(TxnOpKind::Delete),
            3 => Ok(TxnOpKind::Append),
            other => Err(FsError::Corrupted(format!(
                "unknown transaction op code {other}"
            ))),
        }
    }
}

/// The bounded transaction-workload space.
///
/// A workload is a sequence of 1..=`max_txns` transactions; each
/// transaction is 1..=`max_ops_per_txn` ops drawn from `ops` over `keys`
/// distinct keys, and either commits or (when `allow_abort`) aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnBounds {
    /// Prefix for generated workload names (`{prefix}-0000001`, 1-based,
    /// zero-padded so lexicographic order is enumeration order).
    pub name_prefix: String,
    /// Maximum transactions per workload (≥ 1).
    pub max_txns: u32,
    /// Maximum ops per transaction (≥ 1).
    pub max_ops_per_txn: u32,
    /// Number of distinct keys (`k0`, `k1`, …).
    pub keys: u32,
    /// The op kinds to draw from, in enumeration order.
    pub ops: Vec<TxnOpKind>,
    /// Also enumerate aborted transactions (no-resurrection coverage).
    pub allow_abort: bool,
}

impl TxnBounds {
    /// The smallest space that still exercises all three seeded engine
    /// bugs: one transaction of up to two puts/appends over two keys,
    /// always committed — 20 workloads. This is the CI smoke preset.
    pub fn tiny() -> Self {
        TxnBounds {
            name_prefix: "app-tiny".to_string(),
            max_txns: 1,
            max_ops_per_txn: 2,
            keys: 2,
            ops: vec![TxnOpKind::Put, TxnOpKind::Append],
            allow_abort: false,
        }
    }

    /// A broader space (7140 workloads): up to two transactions of up to
    /// two ops over put/append/delete and two keys, with aborts.
    pub fn smoke() -> Self {
        TxnBounds {
            name_prefix: "app-smoke".to_string(),
            max_txns: 2,
            max_ops_per_txn: 2,
            keys: 2,
            ops: vec![TxnOpKind::Put, TxnOpKind::Append, TxnOpKind::Delete],
            allow_abort: true,
        }
    }

    /// Per-op choice count: kinds × keys.
    pub(crate) fn per_op(&self) -> u128 {
        self.ops.len() as u128 * u128::from(self.keys)
    }

    /// Choice count for one transaction: op sequences of length
    /// 1..=`max_ops_per_txn`, times the commit/abort terminator.
    pub(crate) fn per_txn(&self) -> u128 {
        let p = self.per_op();
        let mut ops_total = 0u128;
        let mut power = 1u128;
        for _ in 0..self.max_ops_per_txn {
            power = power.saturating_mul(p);
            ops_total = ops_total.saturating_add(power);
        }
        ops_total.saturating_mul(self.terminators())
    }

    /// Number of transaction terminators (commit, plus abort when allowed).
    pub(crate) fn terminators(&self) -> u128 {
        1 + u128::from(self.allow_abort)
    }

    /// Exact size of the whole space.
    pub fn candidates(&self) -> u64 {
        let m = self.per_txn();
        let mut total = 0u128;
        let mut power = 1u128;
        for _ in 0..self.max_txns {
            power = power.saturating_mul(m);
            total = total.saturating_add(power);
        }
        u64::try_from(total).unwrap_or(u64::MAX)
    }

    /// The `index`-th of `of` contiguous, maximally even shards. Mirrors
    /// `b3_ace::Bounds::shard`: concatenating all shards in order tiles the
    /// space exactly, and shard sizes differ by at most one.
    pub fn shard(&self, index: usize, of: usize) -> TxnShard {
        assert!(of > 0, "cannot split into zero shards");
        assert!(index < of, "shard index {index} out of range 0..{of}");
        let total = u128::from(self.candidates());
        let of128 = of as u128;
        let start = total * index as u128 / of128;
        let end = total * (index as u128 + 1) / of128;
        TxnShard {
            index,
            of,
            start: u64::try_from(start).unwrap_or(u64::MAX),
            end: u64::try_from(end).unwrap_or(u64::MAX),
        }
    }

    /// All `of` shards, in order.
    pub fn shards(&self, of: usize) -> Vec<TxnShard> {
        (0..of).map(|index| self.shard(index, of)).collect()
    }

    /// Stable description used in checkpoint fingerprints.
    pub fn describe(&self) -> String {
        let letters: String = self.ops.iter().map(TxnOpKind::letter).collect();
        format!(
            "t{}c{}k{}[{}]a{}",
            self.max_txns,
            self.max_ops_per_txn,
            self.keys,
            letters,
            u8::from(self.allow_abort)
        )
    }

    /// Serializes with the workspace codec (the distrib job wire form).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name_prefix);
        enc.put_u32(self.max_txns);
        enc.put_u32(self.max_ops_per_txn);
        enc.put_u32(self.keys);
        enc.put_u64(self.ops.len() as u64);
        for op in &self.ops {
            enc.put_u8(op.code());
        }
        enc.put_bool(self.allow_abort);
    }

    /// Inverse of [`TxnBounds::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> FsResult<Self> {
        let name_prefix = dec.get_str()?;
        let max_txns = dec.get_u32()?;
        let max_ops_per_txn = dec.get_u32()?;
        let keys = dec.get_u32()?;
        let num_ops = dec.get_u64()?;
        if num_ops > 16 {
            return Err(FsError::Corrupted(format!(
                "implausible transaction op-kind count {num_ops}"
            )));
        }
        let mut ops = Vec::with_capacity(num_ops as usize);
        for _ in 0..num_ops {
            ops.push(TxnOpKind::from_code(dec.get_u8()?)?);
        }
        let allow_abort = dec.get_bool()?;
        Ok(TxnBounds {
            name_prefix,
            max_txns,
            max_ops_per_txn,
            keys,
            ops,
            allow_abort,
        })
    }
}

/// A contiguous slice `[start, end)` of a [`TxnBounds`] space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnShard {
    /// This shard's position.
    pub index: usize,
    /// Total number of shards in the decomposition.
    pub of: usize,
    /// First workload index covered (0-based, inclusive).
    pub start: u64,
    /// One past the last workload index covered.
    pub end: u64,
}

impl TxnShard {
    /// Number of workloads in this shard.
    pub fn candidates(&self) -> u64 {
        self.end - self.start
    }

    /// True when the shard covers nothing (more shards than workloads).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_counts_are_exact() {
        assert_eq!(TxnBounds::tiny().candidates(), 20);
        assert_eq!(TxnBounds::smoke().candidates(), 7140);
    }

    #[test]
    fn shards_tile_the_space() {
        let bounds = TxnBounds::smoke();
        for of in [1usize, 2, 3, 7, 64] {
            let shards = bounds.shards(of);
            assert_eq!(shards[0].start, 0);
            assert_eq!(shards[of - 1].end, bounds.candidates());
            for pair in shards.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            let sizes: Vec<u64> = shards.iter().map(TxnShard::candidates).collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            assert!(max - min <= 1, "uneven shards: {sizes:?}");
        }
    }

    #[test]
    fn bounds_codec_round_trip() {
        for bounds in [TxnBounds::tiny(), TxnBounds::smoke()] {
            let mut enc = Encoder::new();
            bounds.encode(&mut enc);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(TxnBounds::decode(&mut dec).unwrap(), bounds);
            assert_eq!(dec.remaining(), 0);
        }
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TxnBounds::tiny().describe(), "t1c2k2[PA]a0");
        assert_eq!(TxnBounds::smoke().describe(), "t2c2k2[PAD]a1");
    }
}
