//! The application-level bug corpus: the three seeded engine bugs as
//! replayable entries, mirroring the fs-level corpus in
//! `b3_harness::corpus`.
//!
//! Entries take the target [`FsSpec`] as a parameter (any in-tree file
//! system hosts the engine; the seeded bugs are in the *engine*, so they
//! reproduce on every correct host file system).

use b3_crashmonkey::{Consequence, CrashMonkeyConfig, WorkloadOutcome};
use b3_vfs::fs::FsSpec;
use b3_vfs::FsResult;

use crate::bounds::TxnBounds;
use crate::engine::EngineProfile;
use crate::generator::TxnWorkloadGenerator;
use crate::harness::AppHarness;

/// One seeded engine bug.
#[derive(Debug, Clone)]
pub struct AppCorpusEntry {
    /// Stable identifier, e.g. `app-01`.
    pub id: &'static str,
    /// Short description of the bug.
    pub title: &'static str,
    /// The engine profile with exactly this bug enabled.
    pub engine: EngineProfile,
    /// Index (0-based) of a `TxnBounds::tiny` workload that exposes it.
    pub workload_index: u64,
    /// Consequences the transaction oracle classifies it as.
    pub expected: &'static [Consequence],
    /// What goes wrong, mechanically.
    pub note: &'static str,
}

/// Result of replaying one app corpus entry.
#[derive(Debug)]
pub struct AppCorpusCheck {
    /// The raw harness outcome on the buggy engine.
    pub outcome: WorkloadOutcome,
    /// True if a bug was detected with one of the expected consequences.
    pub detected_expected: bool,
    /// The primary consequence observed, if any.
    pub observed: Option<Consequence>,
}

impl AppCorpusEntry {
    /// The bounded space the entry's workload index refers to.
    pub fn bounds(&self) -> TxnBounds {
        TxnBounds::tiny()
    }

    /// Replays the entry's workload on the buggy engine hosted by `spec`
    /// and checks the observed consequences against the expected set.
    pub fn replay(&self, spec: &dyn FsSpec) -> FsResult<AppCorpusCheck> {
        let harness = AppHarness::new(
            spec,
            CrashMonkeyConfig::exhaustive_crash_points(),
            self.engine,
        );
        let workload = TxnWorkloadGenerator::decode(&self.bounds(), self.workload_index);
        let outcome = harness.test_workload(&workload)?;
        let observed = outcome.worst_consequence();
        let detected_expected = outcome.bugs.iter().any(|bug| {
            self.expected.contains(&bug.consequence)
                || bug
                    .all_consequences
                    .iter()
                    .any(|c| self.expected.contains(c))
        });
        Ok(AppCorpusCheck {
            outcome,
            detected_expected,
            observed,
        })
    }

    /// Replays the same workload on the fixed engine; it must be clean.
    pub fn replay_fixed(&self, spec: &dyn FsSpec) -> FsResult<WorkloadOutcome> {
        let harness = AppHarness::new(
            spec,
            CrashMonkeyConfig::exhaustive_crash_points(),
            EngineProfile::fixed(),
        );
        let workload = TxnWorkloadGenerator::decode(&self.bounds(), self.workload_index);
        harness.test_workload(&workload)
    }
}

/// The three seeded engine bugs.
pub fn seeded_bugs() -> Vec<AppCorpusEntry> {
    vec![
        AppCorpusEntry {
            id: "app-01",
            title: "commit record written before data fsync",
            engine: EngineProfile {
                commit_without_data_fsync: true,
                ..EngineProfile::fixed()
            },
            // Workload 0: a single committed put — the record points at
            // value bytes that never became durable.
            workload_index: 0,
            expected: &[Consequence::TxnAtomicityBroken],
            note: "FIRST's motivating atomicity bug (SNIPPETS.md 1-2): the \
                   commit record is durable but the value heap is not, so \
                   recovery reads zero-filled garbage for the value",
        },
        AppCorpusEntry {
            id: "app-02",
            title: "torn commit record applied partially",
            engine: EngineProfile {
                torn_commit: true,
                ..EngineProfile::fixed()
            },
            // Workload 4: two puts in one transaction — the mid-record
            // persistence point leaves only the first op on disk, and the
            // lenient recovery applies it.
            workload_index: 4,
            expected: &[Consequence::TxnAtomicityBroken],
            note: "the commit record reaches the device in two chunks with \
                   a persistence point between them; crash recovery applies \
                   the parseable prefix, splitting the transaction",
        },
        AppCorpusEntry {
            id: "app-03",
            title: "WAL replayed twice after compaction",
            engine: EngineProfile {
                double_replay: true,
                ..EngineProfile::fixed()
            },
            // Workload 1: a single committed append — the non-idempotent
            // op that doubles when the WAL replays again.
            workload_index: 1,
            expected: &[Consequence::TxnReplayNotIdempotent],
            note: "compaction stamps the snapshot with the pre-replay \
                   sequence number, so every subsequent open replays the \
                   WAL again and appends are applied twice",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_flash::FlashFsSpec;
    use b3_fs_journal::JournalFsSpec;
    use b3_vfs::KernelEra;

    #[test]
    fn entry_workloads_are_in_bounds_and_ids_unique() {
        let entries = seeded_bugs();
        assert_eq!(entries.len(), 3);
        let mut ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3);
        for entry in &entries {
            assert!(entry.workload_index < entry.bounds().candidates());
            assert!(!entry.engine.is_fixed());
        }
    }

    #[test]
    fn every_entry_detects_on_flashfs_and_fixed_engine_is_clean() {
        let spec = FlashFsSpec::new(KernelEra::Patched);
        for entry in seeded_bugs() {
            let check = entry.replay(&spec).unwrap();
            assert!(
                check.detected_expected,
                "{} should detect {:?}, outcome {:?}",
                entry.id, entry.expected, check.outcome.bugs
            );
            let fixed = entry.replay_fixed(&spec).unwrap();
            assert!(
                !fixed.found_bug(),
                "{} fixed engine flagged: {:?}",
                entry.id,
                fixed.bugs
            );
        }
    }

    /// JournalFs's ext4-style ordered journaling flushes dirty data as part
    /// of committing the journal transaction an fsync forces, so the
    /// skipped data-fsync barrier is masked: the commit record can never be
    /// durable ahead of the value bytes. This is faithful to real ext4
    /// `data=ordered` and worth pinning — it is exactly why FIRST-style
    /// app-level bugs need testing on more than one file system.
    #[test]
    fn ordered_journaling_masks_the_data_fsync_bug() {
        let spec = JournalFsSpec::new(KernelEra::Patched);
        for entry in seeded_bugs() {
            let check = entry.replay(&spec).unwrap();
            let expect_detect = entry.id != "app-01";
            assert_eq!(
                check.detected_expected, expect_detect,
                "{} on journalfs: outcome {:?}",
                entry.id, check.outcome.bugs
            );
        }
    }
}
