//! # b3-app: application-level crash testing
//!
//! The B3 paper crash-tests file systems, but the storage engines real
//! applications run — write-ahead logs, manifests, KV stores — sit one
//! layer up and have their own crash-consistency bug taxonomy (torn
//! commit records, commit-before-data-fsync, double replay; see FIRST and
//! WITCHER in PAPERS.md). This crate reuses the existing pipeline end to
//! end — block-layer recording, crash-state enumeration, grouping, sweeps,
//! the distributed coordinator — but swaps the workload for a bounded
//! *transaction* stream against a reference WAL+KV engine ([`WalKv`]) and
//! the checker for a logical transaction oracle ([`TxnOracle`]).
//!
//! The moving parts:
//!
//! - [`WalKv`]: the reference engine. A write-ahead log (`commit.log`),
//!   a value heap (`data.log`) and a compacted snapshot (`snapshot.db`),
//!   all stored through the in-tree [`FileSystem`] trait. Three switchable
//!   seeded bugs ([`EngineProfile`]) reproduce the classic application
//!   crash-consistency failures.
//! - [`TxnBounds`] / [`TxnWorkloadGenerator`]: odometer-style bounded
//!   enumeration of transaction sequences, with `shard` and `skip_to`
//!   mirroring `b3_ace::Bounds` so the sweep/distrib/fleet stack works
//!   unchanged.
//! - [`TxnOracle`]: given a transaction history and a recovered KV state,
//!   decides whether the state is a legal crash outcome — committed
//!   transactions are atomic and durable, aborted ones never resurrect,
//!   and replay is idempotent.
//! - [`AppHarness`]: the CrashMonkey analogue. Profiles a transaction
//!   workload through a recording block device, constructs every crash
//!   state, recovers the engine, and asks the oracle.
//! - [`corpus`]: the three seeded engine bugs as replayable corpus
//!   entries, mirroring the fs-level known-bug corpus.
//!
//! [`FileSystem`]: b3_vfs::FileSystem

pub mod bounds;
pub mod corpus;
pub mod engine;
pub mod generator;
pub mod harness;
pub mod oracle;

pub use bounds::{TxnBounds, TxnOpKind, TxnShard};
pub use engine::{EngineProfile, WalKv, COMMIT_MAGIC, SNAPSHOT_MAGIC};
pub use generator::{TxnWorkload, TxnWorkloadGenerator};
pub use harness::AppHarness;
pub use oracle::{CrashPointMeta, TxnOracle};
