//! Edge cases of the transaction-space sharding and seeking arithmetic the
//! distributed-sweep protocol leans on, mirroring the file-system-space
//! suite in `crates/ace/tests/shard_edges.rs`: oversharded spaces (more
//! shards than candidates), the final partial shard, and `skip_to` at
//! exact space boundaries.

use b3_app::generator::TxnWorkload;
use b3_app::{TxnBounds, TxnShard, TxnWorkloadGenerator};

fn enumerate(bounds: &TxnBounds) -> Vec<TxnWorkload> {
    TxnWorkloadGenerator::new(bounds.clone()).collect()
}

#[test]
fn oversharding_produces_empty_shards_but_loses_nothing() {
    let bounds = TxnBounds::tiny();
    let total = TxnWorkloadGenerator::estimate_candidates(&bounds);
    let num_shards = total as usize * 2 + 5;

    let shards = bounds.shards(num_shards);
    assert!(
        shards.iter().any(TxnShard::is_empty),
        "more shards than candidates forces empty shards"
    );
    let covered: u64 = shards.iter().map(TxnShard::candidates).sum();
    assert_eq!(covered, total);
    for shard in &shards {
        assert!(
            shard.candidates() <= 1,
            "oversharded shards hold at most one candidate"
        );
    }

    let mut concatenated = Vec::new();
    for shard in &shards {
        let produced: Vec<TxnWorkload> =
            TxnWorkloadGenerator::for_shard(bounds.clone(), shard).collect();
        if shard.is_empty() {
            assert!(produced.is_empty(), "an empty shard must enumerate nothing");
        }
        concatenated.extend(produced);
    }
    assert_eq!(concatenated, enumerate(&bounds));
}

#[test]
fn final_partial_shard_covers_exactly_the_tail() {
    let bounds = TxnBounds::tiny();
    let total = TxnWorkloadGenerator::estimate_candidates(&bounds);
    // A shard count that does not divide the space: shard sizes differ by
    // one, and the final shard ends exactly at the space boundary.
    let num_shards = 3;
    assert_ne!(total % num_shards as u64, 0, "pick a non-dividing count");

    let shards = bounds.shards(num_shards);
    assert_eq!(shards[0].start, 0);
    assert_eq!(shards[num_shards - 1].end, total);
    for pair in shards.windows(2) {
        assert_eq!(pair[0].end, pair[1].start, "shards tile the space");
    }
    let sizes: Vec<u64> = shards.iter().map(TxnShard::candidates).collect();
    let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
    assert!(max - min <= 1, "shards are near-equal: {sizes:?}");

    // The final shard alone reproduces the tail of the full enumeration.
    let full = enumerate(&bounds);
    let last: Vec<TxnWorkload> =
        TxnWorkloadGenerator::for_shard(bounds.clone(), &shards[num_shards - 1]).collect();
    assert_eq!(last.as_slice(), &full[full.len() - last.len()..]);
}

#[test]
fn skip_to_zero_is_the_identity() {
    let bounds = TxnBounds::tiny();
    let mut generator = TxnWorkloadGenerator::new(bounds.clone());
    generator.skip_to(0);
    let skipped: Vec<TxnWorkload> = generator.collect();
    assert_eq!(skipped, enumerate(&bounds));
}

#[test]
fn skip_to_the_exact_end_of_the_space_is_empty() {
    let bounds = TxnBounds::tiny();
    let total = TxnWorkloadGenerator::estimate_candidates(&bounds);
    let mut generator = TxnWorkloadGenerator::new(bounds.clone());
    generator.skip_to(total);
    assert_eq!(generator.count(), 0);

    // Past the end is equally empty, not a panic or wraparound.
    let mut generator = TxnWorkloadGenerator::new(bounds);
    generator.skip_to(total + 17);
    assert_eq!(generator.count(), 0);
}

#[test]
fn skip_to_every_shard_boundary_matches_the_shard_decomposition() {
    let bounds = TxnBounds::smoke();
    let full = enumerate(&bounds);
    for num_shards in [2usize, 3, 5, 64] {
        let mut suffix_len = full.len();
        for shard in bounds.shards(num_shards) {
            // Seeking to a shard's start enumerates exactly the shards from
            // there to the end of the space.
            let mut generator = TxnWorkloadGenerator::new(bounds.clone());
            generator.skip_to(shard.start);
            let tail: Vec<TxnWorkload> = generator.collect();
            assert_eq!(tail.as_slice(), &full[full.len() - suffix_len..]);
            suffix_len -= TxnWorkloadGenerator::for_shard(bounds.clone(), &shard).count();
        }
    }
}

#[test]
fn single_shard_split_is_the_whole_space() {
    let bounds = TxnBounds::tiny();
    let shard = bounds.shard(0, 1);
    assert_eq!(shard.start, 0);
    assert_eq!(
        shard.end,
        TxnWorkloadGenerator::estimate_candidates(&bounds)
    );
    let sharded: Vec<TxnWorkload> =
        TxnWorkloadGenerator::for_shard(bounds.clone(), &shard).collect();
    assert_eq!(sharded, enumerate(&bounds));
}
