//! Property-based tests of the transaction oracle and the seeded engine
//! bugs.
//!
//! * **Soundness** (no false positives): on a patched host file system,
//!   the *fixed* engine produces zero oracle violations for arbitrary
//!   transaction histories, across every crash state the block-layer
//!   pipeline enumerates.
//! * **Pure oracle laws**: every committed-prefix state is legal; a
//!   divergent second recovery is always a replay-idempotence violation; a
//!   recovered state outside the allowed set is never clean.
//! * **Seeded-bug liveness** (deterministic, not random): each seeded bug
//!   flag fires on at least one crash state of the bounded tiny space, and
//!   the first violating (workload, crash point) pair is the same on every
//!   run — the deterministic exemplar the corpus pins.

use proptest::prelude::*;

use b3_app::generator::{Txn, TxnOp, TxnWorkload};
use b3_app::oracle::CrashPointMeta;
use b3_app::{AppHarness, EngineProfile, TxnBounds, TxnOracle, TxnWorkloadGenerator};
use b3_crashmonkey::{Consequence, CrashMonkeyConfig};
use b3_fs_cow::CowFsSpec;
use b3_vfs::KernelEra;

fn op_strategy() -> impl Strategy<Value = TxnOp> {
    use b3_app::TxnOpKind;
    (
        prop::sample::select(vec![TxnOpKind::Put, TxnOpKind::Append, TxnOpKind::Delete]),
        0u32..3,
    )
        .prop_map(|(kind, key)| TxnOp { kind, key })
}

fn txn_strategy() -> impl Strategy<Value = Txn> {
    (prop::collection::vec(op_strategy(), 1..4), any::<bool>())
        .prop_map(|(ops, commit)| Txn { ops, commit })
}

fn workload_strategy() -> impl Strategy<Value = TxnWorkload> {
    prop::collection::vec(txn_strategy(), 1..4).prop_map(|txns| TxnWorkload {
        name: "prop".into(),
        index: 0,
        txns,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fixed engine is violation-free on arbitrary transaction
    /// histories, at every crash state.
    #[test]
    fn fixed_engine_has_no_false_positives(workload in workload_strategy()) {
        let spec = CowFsSpec::new(KernelEra::Patched);
        let harness = AppHarness::new(
            &spec,
            CrashMonkeyConfig::exhaustive_crash_points(),
            EngineProfile::fixed(),
        );
        let outcome = harness
            .test_workload(&workload)
            .map_err(|e| TestCaseError::fail(format!("harness error: {e}")))?;
        prop_assert!(
            outcome.bugs.is_empty(),
            "false positive on the fixed engine: {:?}\nworkload: {}",
            outcome.bugs,
            workload.skeleton_string()
        );
    }

    /// Every committed-prefix state is a legal recovery target, and the
    /// in-flight successor state is legal at an in-flight crash point.
    #[test]
    fn every_committed_prefix_state_is_legal(workload in workload_strategy()) {
        let oracle = TxnOracle::new(&workload);
        for j in 0..=oracle.num_committed() {
            let state = oracle.committed_state(j).clone();
            let meta = CrashPointMeta {
                checkpoint: 0,
                committed_before: j as u32,
                in_flight: None,
            };
            let verdict = oracle.classify(&meta, &state, &state);
            prop_assert!(
                verdict.is_clean(),
                "legal prefix state S_{j} flagged: {:?}",
                verdict.violations
            );
            if j < oracle.num_committed() {
                // Crashing *inside* commit j+1 may land before or after it.
                let in_flight = CrashPointMeta {
                    checkpoint: 0,
                    committed_before: j as u32,
                    in_flight: Some(0),
                };
                let next = oracle.committed_state(j + 1).clone();
                prop_assert!(oracle.classify(&in_flight, &state, &state).is_clean());
                prop_assert!(oracle.classify(&in_flight, &next, &next).is_clean());
            }
        }
    }

    /// A second recovery that diverges from the first is always a
    /// replay-idempotence violation, whatever else is wrong.
    #[test]
    fn divergent_reopen_is_always_flagged(workload in workload_strategy()) {
        let oracle = TxnOracle::new(&workload);
        let meta = CrashPointMeta {
            checkpoint: 0,
            committed_before: oracle.num_committed() as u32,
            in_flight: None,
        };
        let recovered = oracle.final_state().clone();
        let mut reopened = recovered.clone();
        reopened.insert("phantom".into(), b"replayed-twice".to_vec());
        let verdict = oracle.classify(&meta, &recovered, &reopened);
        prop_assert!(verdict.violations.iter().any(
            |v| v.consequence == Consequence::TxnReplayNotIdempotent
        ));
    }

    /// A recovered state equal to no legal state is never clean: the
    /// oracle reports durability loss, resurrection, or broken atomicity.
    #[test]
    fn states_outside_the_allowed_set_are_never_clean(workload in workload_strategy()) {
        let oracle = TxnOracle::new(&workload);
        let meta = CrashPointMeta {
            checkpoint: 0,
            committed_before: oracle.num_committed() as u32,
            in_flight: None,
        };
        let mut garbled = oracle.final_state().clone();
        garbled.insert("k0".into(), b"torn-garbage".to_vec());
        if &garbled == oracle.final_state() {
            return Ok(());
        }
        let verdict = oracle.classify(&meta, &garbled, &garbled);
        prop_assert!(!verdict.is_clean(), "garbled state accepted");
    }
}

/// Scans the tiny space with the given engine and returns the first
/// violating (workload name, crash point, consequence) triple.
fn first_violation(engine: EngineProfile) -> Option<(String, u32, Consequence)> {
    let spec = CowFsSpec::new(KernelEra::Patched);
    let harness = AppHarness::new(&spec, CrashMonkeyConfig::exhaustive_crash_points(), engine);
    for workload in TxnWorkloadGenerator::new(TxnBounds::tiny()) {
        let outcome = harness.test_workload(&workload).expect("harness runs");
        if let Some(bug) = outcome.bugs.first() {
            return Some((bug.workload_name.clone(), bug.crash_point, bug.consequence));
        }
    }
    None
}

/// Each seeded bug flag fires somewhere in the tiny space, with the
/// expected consequence — and the first violation is deterministic: the
/// same workload and crash point on every run.
#[test]
fn every_seeded_bug_flag_fires_deterministically() {
    let flags = [
        (
            EngineProfile {
                commit_without_data_fsync: true,
                ..EngineProfile::fixed()
            },
            Consequence::TxnAtomicityBroken,
        ),
        (
            EngineProfile {
                torn_commit: true,
                ..EngineProfile::fixed()
            },
            Consequence::TxnAtomicityBroken,
        ),
        (
            EngineProfile {
                double_replay: true,
                ..EngineProfile::fixed()
            },
            Consequence::TxnReplayNotIdempotent,
        ),
    ];
    for (engine, expected) in flags {
        let first = first_violation(engine)
            .unwrap_or_else(|| panic!("{} must fire in the tiny space", engine.describe()));
        assert_eq!(
            first.2,
            expected,
            "{}: wrong consequence ({first:?})",
            engine.describe()
        );
        let again = first_violation(engine).expect("second scan fires too");
        assert_eq!(
            first,
            again,
            "{}: first violation must be deterministic",
            engine.describe()
        );
    }
}
