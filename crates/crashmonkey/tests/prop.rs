//! Property-based test of the central soundness claim: on a fully patched
//! file system, CrashMonkey must not report bugs for any workload in the
//! bounded space (no false positives), for any of the simulated file
//! systems.

use proptest::prelude::*;

use b3_crashmonkey::{CrashMonkey, CrashMonkeyConfig};
use b3_fs_cow::CowFsSpec;
use b3_fs_flash::FlashFsSpec;
use b3_fs_journal::JournalFsSpec;
use b3_fs_veri::VeriFsSpec;
use b3_vfs::fs::{FsSpec, WriteMode};
use b3_vfs::workload::{Op, Workload, WriteSpec};

fn path_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "foo".to_string(),
        "bar".to_string(),
        "A/foo".to_string(),
        "A/bar".to_string(),
        "B/foo".to_string(),
    ])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        path_strategy().prop_map(|path| Op::Creat { path }),
        (path_strategy(), path_strategy()).prop_map(|(existing, new)| Op::Link { existing, new }),
        (path_strategy(), path_strategy()).prop_map(|(from, to)| Op::Rename { from, to }),
        path_strategy().prop_map(|path| Op::Unlink { path }),
        (path_strategy(), 0u64..32_768, 1u64..16_384).prop_map(|(path, offset, len)| Op::Write {
            path,
            mode: WriteMode::Buffered,
            spec: WriteSpec::Range { offset, len },
        }),
        path_strategy().prop_map(|path| Op::Fsync { path }),
        Just(Op::Sync),
    ]
}

/// Setup creating the bounded file set so most random ops are applicable.
fn standard_setup() -> Vec<Op> {
    vec![
        Op::Mkdir { path: "A".into() },
        Op::Mkdir { path: "B".into() },
        Op::Creat { path: "foo".into() },
        Op::Creat { path: "bar".into() },
        Op::Creat {
            path: "A/foo".into(),
        },
        Op::Creat {
            path: "A/bar".into(),
        },
        Op::Creat {
            path: "B/foo".into(),
        },
    ]
}

fn check_no_false_positive(spec: &dyn FsSpec, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut ops = ops;
    ops.push(Op::Sync);
    let workload = Workload::with_setup("prop", standard_setup(), ops);
    let monkey = CrashMonkey::with_config(spec, CrashMonkeyConfig::exhaustive_crash_points());
    let outcome = monkey
        .test_workload(&workload)
        .map_err(|e| TestCaseError::fail(format!("harness error: {e}")))?;
    if outcome.skipped.is_some() {
        // The random sequence was not executable; nothing to check.
        return Ok(());
    }
    prop_assert!(
        outcome.bugs.is_empty(),
        "false positive on patched {}: {:?}\nworkload:\n{}",
        spec.name(),
        outcome.bugs,
        workload
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn patched_cowfs_has_no_false_positives(ops in prop::collection::vec(op_strategy(), 1..6)) {
        check_no_false_positive(&CowFsSpec::patched(), ops)?;
    }

    #[test]
    fn patched_flashfs_has_no_false_positives(ops in prop::collection::vec(op_strategy(), 1..6)) {
        check_no_false_positive(&FlashFsSpec::patched(), ops)?;
    }

    #[test]
    fn patched_journalfs_has_no_false_positives(ops in prop::collection::vec(op_strategy(), 1..6)) {
        check_no_false_positive(&JournalFsSpec::patched(), ops)?;
    }

    #[test]
    fn patched_verifs_has_no_false_positives(ops in prop::collection::vec(op_strategy(), 1..6)) {
        check_no_false_positive(&VeriFsSpec::patched(), ops)?;
    }
}
