//! Incremental crash-state recovery for one workload.
//!
//! A [`RecoverySession`] ties together the two halves of the incremental
//! pipeline:
//!
//! * the [`CrashStateStream`], which replays the recorded IO once across all
//!   selected checkpoints and reports the *block delta* between adjacent
//!   crash states, and
//! * the file system's [`RecoverDelta`] session, which consumes those deltas
//!   to patch its recovered view forward instead of re-reading and
//!   re-decoding the whole image at every crash point.
//!
//! In debug builds every patched-forward recovered view is cross-checked
//! against a from-scratch [`FsSpec::mount`] of the same crash state: on
//! success the logical snapshots must be identical, on failure the error
//! strings must match. The test suite therefore doubles as an equivalence
//! proof for the recovery engine.

use b3_block::{CowSnapshotDevice, CrashStateStream, DiskImage, IoLog};
use b3_vfs::error::FsResult;
use b3_vfs::fs::{FileSystem, FsSpec};
use b3_vfs::recover::{RecoverDelta, RemountSession};
use b3_vfs::snapshot::LogicalSnapshot;

use crate::config::RecoveryMode;

/// Creates a fresh recovery session for `mode`: the file system's native
/// incremental session, or the always-remount baseline. Sessions outlive
/// individual workloads — [`RecoverySession::new`] re-primes them at every
/// workload boundary, so one session carries its caches (most profitably
/// the pinned base-image decode) across an entire sweep.
pub fn session_for(spec: &dyn FsSpec, mode: RecoveryMode) -> Box<dyn RecoverDelta + Send> {
    match mode {
        RecoveryMode::Remount => Box::new(RemountSession),
        RecoveryMode::PatchForward => spec.recovery_session(),
    }
}

/// Per-workload recovery engine: streams crash states in checkpoint order
/// and recovers each one, incrementally when the file system supports it.
///
/// The underlying [`RecoverDelta`] session is borrowed, not owned: it
/// persists across workloads (see [`session_for`]) and is re-primed against
/// the workload's base image here.
pub struct RecoverySession<'a> {
    spec: &'a dyn FsSpec,
    stream: CrashStateStream<'a>,
    session: &'a mut (dyn RecoverDelta + Send),
    /// Cross-check every patched-forward view against a from-scratch mount.
    debug_check: bool,
    /// Cumulative time spent in the recovery step proper (excluding IO
    /// replay and the debug cross-check).
    recovery_time: std::time::Duration,
}

impl<'a> RecoverySession<'a> {
    /// Creates a per-workload engine recovering crash states of `log`
    /// replayed over `base`, priming `session` against `base` so state
    /// cached from previous workloads is either re-validated (same base)
    /// or dropped.
    pub fn new(
        spec: &'a dyn FsSpec,
        base: &'a DiskImage,
        log: &'a IoLog,
        session: &'a mut (dyn RecoverDelta + Send),
    ) -> Self {
        session.prime(spec, base);
        let debug_check = cfg!(debug_assertions) && session.is_incremental();
        RecoverySession {
            spec,
            stream: CrashStateStream::new(base, log),
            session,
            debug_check,
            recovery_time: std::time::Duration::ZERO,
        }
    }

    /// Constructs the crash state for `checkpoint` and recovers it. Returns
    /// the raw crash-state device (for fsck on recovery failure) alongside
    /// the recovery result. Checkpoints must be visited in increasing order
    /// for the incremental path to engage; out-of-order visits silently fall
    /// back to a from-scratch recovery.
    pub fn recover_at(
        &mut self,
        checkpoint: u32,
    ) -> FsResult<(CowSnapshotDevice, FsResult<Box<dyn FileSystem>>)> {
        let step = self
            .stream
            .step_to(checkpoint)
            .map_err(b3_vfs::error::FsError::from)?;
        // Cloning the crash-state device is construction cost, not recovery
        // cost — keep it outside the recovery timer.
        let device = Box::new(step.state.clone());
        let recover_start = std::time::Instant::now();
        let recovered = self.session.recover(self.spec, device, step.delta.as_ref());
        self.recovery_time += recover_start.elapsed();
        if self.debug_check {
            Self::assert_equivalent(self.spec, &step.state, &recovered, checkpoint);
        }
        Ok((step.state, recovered))
    }

    /// Total bytes of recorded IO replayed while constructing crash states
    /// (each recorded write replays exactly once, however many checkpoints
    /// are visited).
    pub fn replayed_bytes(&self) -> u64 {
        self.stream.replayed_bytes()
    }

    /// Cumulative time spent in the recovery step proper across every
    /// [`RecoverySession::recover_at`] call — IO replay and the debug
    /// cross-check excluded.
    pub fn recovery_time(&self) -> std::time::Duration {
        self.recovery_time
    }

    /// Debug-build invariant: the incrementally recovered view must be
    /// bit-identical (logically) to a from-scratch mount of the same state.
    fn assert_equivalent(
        spec: &dyn FsSpec,
        state: &CowSnapshotDevice,
        recovered: &FsResult<Box<dyn FileSystem>>,
        checkpoint: u32,
    ) {
        let fresh = spec.mount(Box::new(state.clone()));
        match (recovered, fresh) {
            (Ok(patched), Ok(mounted)) => {
                let patched_snapshot = LogicalSnapshot::capture(patched.as_ref());
                let fresh_snapshot = LogicalSnapshot::capture(mounted.as_ref());
                assert!(
                    snapshots_equal(&patched_snapshot, &fresh_snapshot),
                    "incremental recovery diverged from remount at checkpoint \
                     {checkpoint} on {}",
                    spec.name()
                );
            }
            (Err(patched), Err(fresh)) => {
                assert_eq!(
                    patched.to_string(),
                    fresh.to_string(),
                    "incremental recovery failed differently from remount at \
                     checkpoint {checkpoint} on {}",
                    spec.name()
                );
            }
            (Ok(_), Err(fresh)) => panic!(
                "incremental recovery succeeded where remount failed ({fresh}) \
                 at checkpoint {checkpoint} on {}",
                spec.name()
            ),
            (Err(patched), Ok(_)) => panic!(
                "incremental recovery failed ({patched}) where remount \
                 succeeded at checkpoint {checkpoint} on {}",
                spec.name()
            ),
        }
    }
}

/// Compares two capture results: equal snapshots, or equal capture errors.
fn snapshots_equal(a: &FsResult<LogicalSnapshot>, b: &FsResult<LogicalSnapshot>) -> bool {
    match (a, b) {
        (Ok(a), Ok(b)) => a == b,
        (Err(a), Err(b)) => a.to_string() == b.to_string(),
        _ => false,
    }
}
