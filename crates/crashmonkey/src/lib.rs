//! CrashMonkey: automatic crash-consistency testing of arbitrary workloads.
//!
//! CrashMonkey implements the testing half of the B3 approach (§5.1 of the
//! paper). Given a file system (any [`FsSpec`]) and a workload (any
//! [`Workload`]), it:
//!
//! 1. **Profiles** the workload: executes it on a freshly formatted file
//!    system mounted on an IO-recording wrapper device, inserting a
//!    *checkpoint* marker into the recorded IO stream after every
//!    persistence operation and capturing, at each checkpoint, fine-grained
//!    *oracles* — snapshots of the files and directories that have been
//!    explicitly persisted so far.
//! 2. **Constructs crash states**: for a chosen checkpoint, replays the
//!    recorded IO from the initial image up to that checkpoint onto a fresh
//!    copy-on-write snapshot. The result is exactly the storage state at the
//!    moment the persistence call completed — an uncleanly-unmounted image.
//! 3. **Checks consistency**: mounts the crash state (letting the file
//!    system run its recovery), then runs the AutoChecker's read checks
//!    (persisted files must exist with the persisted data and metadata) and
//!    write checks (the recovered file system must still be usable: files
//!    can be created, persisted directories can be emptied and removed).
//!
//! Any violation produces a [`BugReport`] with the workload, crash point,
//! expected and actual state, and a classified [`Consequence`] — the same
//! fields the paper's bug reports carry.

pub mod checker;
pub mod config;
pub mod profiler;
pub mod recovery;
pub mod report;
mod triage;

use std::sync::Arc;
use std::time::Instant;

use b3_block::{crash_state, DiskImage};
use b3_vfs::error::FsResult;
use b3_vfs::fs::FsSpec;
use b3_vfs::snapshot::EntryInterner;
use b3_vfs::workload::Workload;

pub use checker::{AutoChecker, CheckVerdict};
pub use config::{CrashMonkeyConfig, CrashPointPolicy, RecoveryMode};
pub use profiler::{CheckpointInfo, Expectation, ProfileResult, Profiler};
pub use recovery::{session_for, RecoverySession};
pub use report::{BugReport, Consequence, PhaseTiming, ResourceStats, WorkloadOutcome};

/// The CrashMonkey test harness for one target file system.
pub struct CrashMonkey<'a> {
    spec: &'a dyn FsSpec,
    config: CrashMonkeyConfig,
    /// The frozen post-mkfs image every profiled workload mounts a snapshot
    /// of; formatted once per harness instead of once per workload.
    formatted: std::sync::OnceLock<DiskImage>,
    /// Optional cross-workload oracle/expectation interner (see
    /// [`EntryInterner`]); shared between harnesses to pool their oracles.
    interner: Option<Arc<EntryInterner>>,
    /// The persistent [`RecoverDelta`](b3_vfs::recover::RecoverDelta)
    /// session, created on first use and re-primed at every workload
    /// boundary so its caches (most profitably the pinned decode of the
    /// shared post-mkfs base image) carry across workloads.
    recovery_session: std::sync::Mutex<Option<Box<dyn b3_vfs::recover::RecoverDelta + Send>>>,
    /// Cross-workload verdict cache for [`CrashPointPolicy::AllTriaged`]
    /// (see the `triage` module). Sound per harness because the spec, era,
    /// device geometry, and post-mkfs base image are all fixed here.
    triage: std::sync::Mutex<triage::TriageCache>,
}

impl<'a> CrashMonkey<'a> {
    /// Creates a harness for `spec` with the default configuration.
    pub fn new(spec: &'a dyn FsSpec) -> Self {
        Self::with_config(spec, CrashMonkeyConfig::default())
    }

    /// Creates a harness with an explicit configuration.
    pub fn with_config(spec: &'a dyn FsSpec, config: CrashMonkeyConfig) -> Self {
        CrashMonkey {
            spec,
            config,
            formatted: std::sync::OnceLock::new(),
            interner: None,
            recovery_session: std::sync::Mutex::new(None),
            triage: std::sync::Mutex::new(triage::TriageCache::default()),
        }
    }

    /// Creates a harness whose oracle/expectation entries are interned in
    /// `interner`, deduplicating content-equal entries across workloads.
    pub fn with_interner(
        spec: &'a dyn FsSpec,
        config: CrashMonkeyConfig,
        interner: Arc<EntryInterner>,
    ) -> Self {
        CrashMonkey {
            interner: Some(interner),
            ..Self::with_config(spec, config)
        }
    }

    /// The frozen post-mkfs image (formatting on first use).
    fn formatted_image(&self) -> FsResult<DiskImage> {
        if let Some(image) = self.formatted.get() {
            return Ok(image.clone());
        }
        let image = profiler::formatted_base_image(self.spec, &self.config)?;
        Ok(self.formatted.get_or_init(|| image).clone())
    }

    /// The active configuration.
    pub fn config(&self) -> &CrashMonkeyConfig {
        &self.config
    }

    /// Drops every cached triage verdict. Sweep shards call this at shard
    /// boundaries so a shard's outcome never depends on which other shards
    /// ran through the same harness. A no-op unless the policy is
    /// [`CrashPointPolicy::AllTriaged`].
    pub fn reset_triage(&self) {
        self.triage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .reset();
    }

    /// Number of distinct triage witnesses currently cached.
    pub fn triage_witnesses(&self) -> usize {
        self.triage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Tests one workload end to end: profile, construct crash states, check
    /// consistency. Returns the outcome including any bug reports.
    pub fn test_workload(&self, workload: &Workload) -> FsResult<WorkloadOutcome> {
        let total_start = Instant::now();

        // Phase 1: profile (mounting a snapshot of the cached mkfs image).
        let profile_start = Instant::now();
        let base_image = self.formatted_image()?;
        let profiler = match &self.interner {
            Some(interner) => Profiler::with_interner(self.spec, &self.config, interner.clone()),
            None => Profiler::new(self.spec, &self.config),
        };
        let profile = profiler.profile_on(base_image, workload)?;
        let profile_time = profile_start.elapsed();

        let mut outcome = WorkloadOutcome::new(workload, self.spec.name());
        outcome.resource = ResourceStats {
            recorded_io_bytes: profile.log.recorded_bytes(),
            crash_state_overlay_bytes: 0,
            workload_storage_bytes: workload.to_string().len() as u64,
        };

        if let Some(error) = &profile.exec_error {
            outcome.skipped = Some(format!("workload failed to execute: {error}"));
            outcome.timing = PhaseTiming {
                profile: profile_time,
                ..PhaseTiming::default()
            };
            return Ok(outcome);
        }

        // Phases 2 and 3: construct crash states, recover them, and check
        // them. The recovery session replays each recorded IO exactly once
        // across all checkpoints and — when the file system supports it —
        // patches its recovered view forward with the block delta between
        // adjacent crash states instead of remounting from scratch.
        let checkpoints = self.config.crash_points.select(&profile.checkpoints);
        let triage_audit = self.config.crash_points.triage_audit();
        let mut persistent = self
            .recovery_session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let persistent =
            persistent.get_or_insert_with(|| session_for(self.spec, self.config.recovery));
        let mut session = RecoverySession::new(
            self.spec,
            &profile.base_image,
            &profile.log,
            persistent.as_mut(),
        );
        let mut construct_time = std::time::Duration::ZERO;
        let mut check_time = std::time::Duration::ZERO;

        // When triaging, the content digest of every crash state comes from
        // one pass over the recorded log. Digest and key computation are
        // accounted as construction cost: they replace (part of) it.
        let construct_start = Instant::now();
        let state_digests: Vec<(u32, u128)> = match triage_audit {
            Some(_) => b3_analyze::state_digests(&profile.log),
            None => Vec::new(),
        };
        let key_seed = triage_audit.map(|_| triage::KeySeed::of(workload));
        let mut triage = self
            .triage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        construct_time += construct_start.elapsed();

        for info in checkpoints {
            // Triage: reuse the witness verdict when this crash state's
            // checker inputs are bit-identical to an already-tested one.
            let construct_start = Instant::now();
            let key = key_seed.as_ref().map(|seed| {
                // Checkpoints are few per workload, so a linear scan beats
                // a map lookup (and needs no per-workload allocation).
                let digest = state_digests
                    .iter()
                    .find(|(id, _)| *id == info.id)
                    .map_or(0, |(_, digest)| *digest);
                triage.key(digest, seed, info)
            });
            let mut audit_witness = None;
            if let Some(key) = key {
                if let Some(witness) = triage.lookup(key) {
                    // The audit re-tests the first `audit` reused states of
                    // each workload dynamically and compares.
                    if outcome.triage_audited < triage_audit.unwrap_or(0) {
                        audit_witness = Some(witness.clone());
                    } else {
                        outcome.checkpoints_reused += 1;
                        let report =
                            witness
                                .clone()
                                .into_report(workload, self.spec.name(), info.id);
                        if let Some(report) = report {
                            outcome.bugs.push(report);
                        }
                        construct_time += construct_start.elapsed();
                        continue;
                    }
                }
            }

            let (state, recovered) = session.recover_at(info.id)?;
            construct_time += construct_start.elapsed();

            let check_start = Instant::now();
            let checker = AutoChecker::new(self.spec, &self.config);
            let verdict = checker.check_recovered(workload, &profile, info, state, recovered);
            check_time += check_start.elapsed();

            match (audit_witness, key) {
                (Some(cached), _) => {
                    outcome.triage_audited += 1;
                    if let Some(divergence) = triage::audit_divergence(info.id, &cached, &verdict) {
                        outcome.triage_divergences.push(divergence);
                    }
                }
                (None, Some(key)) => triage.record(key, &verdict),
                (None, None) => {}
            }

            outcome.checkpoints_tested += 1;
            if let Some(report) = verdict.into_report(workload, self.spec.name(), info.id) {
                outcome.bugs.push(report);
            }
        }
        // `replayed_bytes` is cumulative over the stream's lifetime, so it
        // is read once after the loop: each recorded write contributes its
        // size exactly once however many checkpoints were visited.
        outcome.resource.crash_state_overlay_bytes = session.replayed_bytes();

        outcome.timing = PhaseTiming {
            profile: profile_time,
            crash_state_construction: construct_time,
            recovery: session.recovery_time(),
            checking: check_time,
            total: total_start.elapsed(),
            modeled_kernel_delay_seconds: self.config.modeled_kernel_delay_seconds(),
        };
        Ok(outcome)
    }

    /// Convenience: profile a workload without checking (used by benches).
    pub fn profile_only(&self, workload: &Workload) -> FsResult<ProfileResult> {
        let profiler = match &self.interner {
            Some(interner) => Profiler::with_interner(self.spec, &self.config, interner.clone()),
            None => Profiler::new(self.spec, &self.config),
        };
        profiler.profile(workload)
    }

    /// Convenience: build the crash state for one checkpoint of a profile.
    pub fn crash_state_for(
        &self,
        profile: &ProfileResult,
        checkpoint: u32,
    ) -> FsResult<b3_block::CowSnapshotDevice> {
        crash_state(&profile.base_image, &profile.log, checkpoint).map_err(Into::into)
    }

    /// The initial (pre-mkfs) disk image used for all tests.
    pub fn base_image(&self) -> DiskImage {
        DiskImage::empty(self.config.device_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_cow::CowFsSpec;
    use b3_fs_veri::VeriFsSpec;
    use b3_vfs::fs::WriteMode;
    use b3_vfs::workload::{Op, WriteSpec};
    use b3_vfs::KernelEra;

    fn w(name: &str, setup: Vec<Op>, ops: Vec<Op>) -> Workload {
        Workload::with_setup(name, setup, ops)
    }

    #[test]
    fn patched_cowfs_has_no_false_positives_on_simple_workloads() {
        let spec = CowFsSpec::patched();
        let monkey = CrashMonkey::new(&spec);
        let workloads = vec![
            w(
                "create-fsync",
                vec![Op::Mkdir { path: "A".into() }],
                vec![
                    Op::Creat {
                        path: "A/foo".into(),
                    },
                    Op::Fsync {
                        path: "A/foo".into(),
                    },
                ],
            ),
            w(
                "write-sync-rename-fsync",
                vec![
                    Op::Mkdir { path: "A".into() },
                    Op::Creat {
                        path: "A/foo".into(),
                    },
                ],
                vec![
                    Op::Write {
                        path: "A/foo".into(),
                        mode: WriteMode::Buffered,
                        spec: WriteSpec::range(0, 8192),
                    },
                    Op::Sync,
                    Op::Rename {
                        from: "A/foo".into(),
                        to: "A/bar".into(),
                    },
                    Op::Fsync {
                        path: "A/bar".into(),
                    },
                ],
            ),
            w(
                "link-then-fsync",
                vec![Op::Creat { path: "foo".into() }],
                vec![
                    Op::Write {
                        path: "foo".into(),
                        mode: WriteMode::Buffered,
                        spec: WriteSpec::range(0, 4096),
                    },
                    Op::Link {
                        existing: "foo".into(),
                        new: "bar".into(),
                    },
                    Op::Fsync { path: "foo".into() },
                ],
            ),
        ];
        for workload in &workloads {
            let outcome = monkey.test_workload(workload).unwrap();
            assert!(
                outcome.bugs.is_empty(),
                "false positive on patched CowFs for {}: {:?}",
                workload.name,
                outcome.bugs
            );
            assert!(outcome.skipped.is_none());
            assert!(outcome.checkpoints_tested >= 1);
        }
    }

    #[test]
    fn buggy_cowfs_hard_link_fsync_is_detected() {
        // Known workload 16: the file recovers with size 0 on kernel 3.13.
        let workload = w(
            "known-16",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Sync,
                Op::Write {
                    path: "A/foo".into(),
                    mode: WriteMode::Buffered,
                    spec: WriteSpec::range(0, 16 * 1024),
                },
                Op::Link {
                    existing: "A/foo".into(),
                    new: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
            ],
        );

        let buggy = CowFsSpec::new(KernelEra::V3_13);
        let outcome = CrashMonkey::new(&buggy).test_workload(&workload).unwrap();
        assert!(!outcome.bugs.is_empty(), "bug must be detected on 3.13");
        // The 3.13-era file system exhibits both the hard-link data loss and
        // (because the still-unfixed "fsync skips other names" bug was also
        // present back then) the missing hard-link name; data loss must be
        // among the observed consequences.
        assert!(outcome.bugs[0]
            .all_consequences
            .contains(&Consequence::DataLoss));

        let patched = CowFsSpec::patched();
        let outcome = CrashMonkey::new(&patched).test_workload(&workload).unwrap();
        assert!(
            outcome.bugs.is_empty(),
            "no bug on patched: {:?}",
            outcome.bugs
        );
    }

    #[test]
    fn fscq_fdatasync_bug_is_detected() {
        // New bug 11 on the verified file system.
        let workload = w(
            "fscq-11",
            vec![Op::Creat { path: "foo".into() }],
            vec![
                Op::Write {
                    path: "foo".into(),
                    mode: WriteMode::Buffered,
                    spec: WriteSpec::range(0, 4096),
                },
                Op::Sync,
                Op::Write {
                    path: "foo".into(),
                    mode: WriteMode::Buffered,
                    spec: WriteSpec::range(4096, 4096),
                },
                Op::Fdatasync { path: "foo".into() },
            ],
        );
        let buggy = VeriFsSpec::new(KernelEra::V4_16);
        let outcome = CrashMonkey::new(&buggy).test_workload(&workload).unwrap();
        assert_eq!(outcome.bugs.len(), 1);
        assert_eq!(outcome.bugs[0].consequence, Consequence::DataLoss);

        let patched = VeriFsSpec::patched();
        let outcome = CrashMonkey::new(&patched).test_workload(&workload).unwrap();
        assert!(outcome.bugs.is_empty());
    }

    #[test]
    fn invalid_workloads_are_skipped_not_reported() {
        let spec = CowFsSpec::patched();
        let monkey = CrashMonkey::new(&spec);
        let workload = w(
            "invalid",
            vec![],
            vec![
                Op::Rename {
                    from: "missing".into(),
                    to: "elsewhere".into(),
                },
                Op::Sync,
            ],
        );
        let outcome = monkey.test_workload(&workload).unwrap();
        assert!(outcome.skipped.is_some());
        assert!(outcome.bugs.is_empty());
    }

    #[test]
    fn workloads_without_persistence_points_test_nothing() {
        let spec = CowFsSpec::patched();
        let monkey = CrashMonkey::new(&spec);
        let workload = w("no-persist", vec![], vec![Op::Creat { path: "foo".into() }]);
        let outcome = monkey.test_workload(&workload).unwrap();
        assert_eq!(outcome.checkpoints_tested, 0);
        assert!(outcome.bugs.is_empty());
    }

    /// A workload with several persistence points, so `CrashPointPolicy::All`
    /// visits multiple crash states.
    fn multi_checkpoint_workload() -> Workload {
        w(
            "multi-checkpoint",
            vec![Op::Mkdir { path: "A".into() }],
            vec![
                Op::Creat {
                    path: "A/foo".into(),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
                Op::Write {
                    path: "A/foo".into(),
                    mode: WriteMode::Buffered,
                    spec: WriteSpec::range(0, 8192),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
                Op::Rename {
                    from: "A/foo".into(),
                    to: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/bar".into(),
                },
            ],
        )
    }

    #[test]
    fn overlay_bytes_are_not_double_counted_across_crash_points() {
        // Regression test: `replayed_bytes` is cumulative over the stream,
        // and the per-checkpoint `+=` it used to feed made the reported
        // overlay bytes grow quadratically under `CrashPointPolicy::All`.
        // The recorded IO replays exactly once regardless of how many crash
        // points are visited, so the final figure must match `LastOnly`.
        let spec = CowFsSpec::patched();
        let workload = multi_checkpoint_workload();

        let all = CrashMonkey::with_config(&spec, CrashMonkeyConfig::exhaustive_crash_points())
            .test_workload(&workload)
            .unwrap();
        let last = CrashMonkey::with_config(&spec, CrashMonkeyConfig::small())
            .test_workload(&workload)
            .unwrap();

        assert!(all.checkpoints_tested > 1, "need multiple crash points");
        assert!(all.resource.crash_state_overlay_bytes > 0);
        assert_eq!(
            all.resource.crash_state_overlay_bytes, last.resource.crash_state_overlay_bytes,
            "overlay bytes must not scale with the number of crash points"
        );
    }

    #[test]
    fn patch_forward_recovery_matches_remount_outcomes() {
        // The two recovery modes must be outcome-identical (the debug
        // equivalence assertion inside RecoverySession additionally
        // cross-checks every individual crash state in this build).
        let specs: Vec<Box<dyn FsSpec>> = vec![
            Box::new(CowFsSpec::new(KernelEra::V3_13)),
            Box::new(CowFsSpec::patched()),
            Box::new(VeriFsSpec::new(KernelEra::V4_16)),
        ];
        let workloads = vec![
            multi_checkpoint_workload(),
            w(
                "known-16-style",
                vec![Op::Creat { path: "foo".into() }],
                vec![
                    Op::Sync,
                    Op::Write {
                        path: "foo".into(),
                        mode: WriteMode::Buffered,
                        spec: WriteSpec::range(0, 16 * 1024),
                    },
                    Op::Link {
                        existing: "foo".into(),
                        new: "bar".into(),
                    },
                    Op::Fsync { path: "foo".into() },
                ],
            ),
        ];
        for spec in &specs {
            for workload in &workloads {
                let patch = CrashMonkey::with_config(
                    spec.as_ref(),
                    CrashMonkeyConfig::exhaustive_crash_points(),
                )
                .test_workload(workload)
                .unwrap();
                let remount = CrashMonkey::with_config(
                    spec.as_ref(),
                    CrashMonkeyConfig {
                        recovery: RecoveryMode::Remount,
                        ..CrashMonkeyConfig::exhaustive_crash_points()
                    },
                )
                .test_workload(workload)
                .unwrap();
                assert_eq!(patch.checkpoints_tested, remount.checkpoints_tested);
                assert_eq!(
                    patch.bugs,
                    remount.bugs,
                    "recovery modes diverged on {} / {}",
                    spec.name(),
                    workload.name
                );
            }
        }
    }

    #[test]
    fn shared_interner_pools_oracles_across_workloads() {
        let spec = CowFsSpec::patched();
        let interner = Arc::new(EntryInterner::new());
        let monkey = CrashMonkey::with_interner(
            &spec,
            CrashMonkeyConfig::exhaustive_crash_points(),
            interner.clone(),
        );
        for workload in [
            multi_checkpoint_workload(),
            w(
                "second",
                vec![Op::Mkdir { path: "A".into() }],
                vec![
                    Op::Creat {
                        path: "A/foo".into(),
                    },
                    Op::Fsync {
                        path: "A/foo".into(),
                    },
                ],
            ),
        ] {
            let outcome = monkey.test_workload(&workload).unwrap();
            assert!(outcome.skipped.is_none());
        }
        assert!(
            !interner.is_empty(),
            "profiling must populate the shared interner"
        );
    }

    #[test]
    fn triaged_outcomes_match_exhaustive_bug_for_bug() {
        let specs: Vec<Box<dyn FsSpec>> = vec![
            Box::new(CowFsSpec::new(KernelEra::V3_13)),
            Box::new(CowFsSpec::patched()),
            Box::new(VeriFsSpec::new(KernelEra::V4_16)),
        ];
        let workloads = vec![
            multi_checkpoint_workload(),
            w(
                "hard-link-style",
                vec![Op::Creat { path: "foo".into() }],
                vec![
                    Op::Sync,
                    Op::Write {
                        path: "foo".into(),
                        mode: WriteMode::Buffered,
                        spec: WriteSpec::range(0, 16 * 1024),
                    },
                    Op::Link {
                        existing: "foo".into(),
                        new: "bar".into(),
                    },
                    Op::Fsync { path: "foo".into() },
                ],
            ),
        ];
        for spec in &specs {
            let all = CrashMonkey::with_config(
                spec.as_ref(),
                CrashMonkeyConfig::exhaustive_crash_points(),
            );
            let triaged = CrashMonkey::with_config(
                spec.as_ref(),
                CrashMonkeyConfig {
                    crash_points: CrashPointPolicy::AllTriaged { audit: 1 },
                    ..CrashMonkeyConfig::small()
                },
            );
            for workload in &workloads {
                let exhaustive = all.test_workload(workload).unwrap();
                let reused = triaged.test_workload(workload).unwrap();
                assert_eq!(
                    exhaustive.bugs,
                    reused.bugs,
                    "triage diverged on {} / {}",
                    spec.name(),
                    workload.name
                );
                assert_eq!(
                    exhaustive.checkpoints_tested,
                    reused.checkpoints_tested + reused.checkpoints_reused,
                    "triage must cover every crash point"
                );
                assert!(
                    reused.triage_divergences.is_empty(),
                    "audit divergence on {} / {}: {:?}",
                    spec.name(),
                    workload.name,
                    reused.triage_divergences
                );
            }
        }
    }

    #[test]
    fn triage_reuses_witnesses_across_workloads() {
        // Two workloads identical except for their name produce identical
        // crash states and checker inputs, so the second is fully covered by
        // reuse — and its synthesized reports must carry *its* name.
        let spec = CowFsSpec::new(KernelEra::V3_13);
        let monkey = CrashMonkey::with_config(&spec, CrashMonkeyConfig::triaged_crash_points());
        let first = {
            let mut workload = multi_checkpoint_workload();
            workload.name = "first".into();
            monkey.test_workload(&workload).unwrap()
        };
        assert_eq!(first.checkpoints_reused, 0);
        assert!(first.checkpoints_tested > 1);
        assert!(monkey.triage_witnesses() > 0);

        let second = {
            let mut workload = multi_checkpoint_workload();
            workload.name = "second".into();
            monkey.test_workload(&workload).unwrap()
        };
        assert_eq!(second.checkpoints_tested, 0, "all states must be reused");
        assert_eq!(second.checkpoints_reused, first.checkpoints_tested);
        assert_eq!(second.bugs.len(), first.bugs.len());
        for bug in &second.bugs {
            assert_eq!(bug.workload_name, "second");
        }

        monkey.reset_triage();
        assert_eq!(monkey.triage_witnesses(), 0);
        let third = {
            let mut workload = multi_checkpoint_workload();
            workload.name = "third".into();
            monkey.test_workload(&workload).unwrap()
        };
        assert_eq!(
            third.checkpoints_tested, first.checkpoints_tested,
            "a reset cache must re-test dynamically"
        );
    }
}
