//! CrashMonkey configuration.

use b3_block::BLOCK_SIZE;

use crate::profiler::CheckpointInfo;

/// Which checkpoints of a workload to crash at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPointPolicy {
    /// Only the final persistence point. This is the paper's testing
    /// strategy (§5.3): when workloads are generated in increasing sequence
    /// length, crashing at an earlier persistence point is equivalent to an
    /// already-tested shorter workload.
    #[default]
    LastOnly,
    /// Every persistence point (used when reproducing individual corpus
    /// workloads outside the exhaustive-generation setting).
    All,
    /// Every persistence point *covered*, but only triage-new states
    /// *dynamically tested*: crash states whose content digest and checker
    /// projection match an already-tested state (see `b3_analyze` and
    /// docs/ANALYSIS.md) reuse the recorded verdict of their witness
    /// instead of being re-constructed, re-mounted, and re-checked. Bug
    /// groups are byte-identical to [`CrashPointPolicy::All`] by
    /// construction; the differential suite pins it.
    AllTriaged {
        /// When non-zero, deterministically re-test up to this many reused
        /// states per workload dynamically and compare against the cached
        /// verdict (the analysis-layer analogue of `PruneMode::Audit`).
        /// Divergences are reported in the workload outcome.
        audit: u32,
    },
}

impl CrashPointPolicy {
    /// Selects the checkpoints to test from a profile.
    pub fn select<'a>(&self, checkpoints: &'a [CheckpointInfo]) -> Vec<&'a CheckpointInfo> {
        match self {
            CrashPointPolicy::LastOnly => checkpoints.last().into_iter().collect(),
            CrashPointPolicy::All | CrashPointPolicy::AllTriaged { .. } => {
                checkpoints.iter().collect()
            }
        }
    }

    /// True when the policy covers every persistence point (dynamically or
    /// via triage reuse).
    pub fn covers_all(&self) -> bool {
        !matches!(self, CrashPointPolicy::LastOnly)
    }

    /// The triage audit budget, when the policy is triaged.
    pub fn triage_audit(&self) -> Option<u32> {
        match self {
            CrashPointPolicy::AllTriaged { audit } => Some(*audit),
            _ => None,
        }
    }
}

/// How crash states are recovered before checking.
///
/// Both modes produce byte-identical verdicts and reports — the differential
/// test suite pins that, and debug builds assert it per crash state. The
/// knob exists for benchmarking the remount baseline and for bisecting a
/// suspected recovery-engine fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Mount every crash state from scratch via [`FsSpec::mount`]
    /// (the paper's strategy, and the pre-incremental-recovery behaviour).
    ///
    /// [`FsSpec::mount`]: b3_vfs::fs::FsSpec::mount
    Remount,
    /// Mount the first selected crash state, then patch the recovered view
    /// forward using the block deltas between adjacent states (via each
    /// file system's [`RecoverDelta`](b3_vfs::recover::RecoverDelta)
    /// session).
    #[default]
    PatchForward,
}

/// Configuration of a CrashMonkey run.
#[derive(Debug, Clone, Copy)]
pub struct CrashMonkeyConfig {
    /// Size of the test device in blocks. Defaults to the paper's 100 MB
    /// initial file-system image (Table 3).
    pub device_blocks: u64,
    /// Which persistence points to crash at.
    pub crash_points: CrashPointPolicy,
    /// Treat `O_DIRECT` writes as persistence points (their data reaches the
    /// device synchronously). Needed to reproduce the ext4 direct-write
    /// i_disksize bug (known workload 4).
    pub direct_write_is_persistence_point: bool,
    /// Model the kernel-imposed delays the paper reports for the real
    /// CrashMonkey (§6.3): ~1 s to mount a file system plus a 2 s settle
    /// delay after the workload, which together account for 84% of the 4.6 s
    /// per-workload latency. The simulated file systems have no such delays;
    /// when this flag is set the reported *modeled* latency adds them so the
    /// benchmark output can be compared against the paper's numbers.
    pub model_kernel_delays: bool,
    /// How crash states are recovered before checking. Outcome-neutral by
    /// construction (see [`RecoveryMode`]), so this is deliberately *not*
    /// part of any sweep scope, fingerprint, or wire format.
    pub recovery: RecoveryMode,
}

impl Default for CrashMonkeyConfig {
    fn default() -> Self {
        CrashMonkeyConfig {
            device_blocks: 100 * 1024 * 1024 / BLOCK_SIZE as u64,
            crash_points: CrashPointPolicy::LastOnly,
            direct_write_is_persistence_point: true,
            model_kernel_delays: false,
            recovery: RecoveryMode::PatchForward,
        }
    }
}

impl CrashMonkeyConfig {
    /// A configuration matching the paper's evaluation setup.
    pub fn paper_default() -> Self {
        CrashMonkeyConfig::default()
    }

    /// A small, fast configuration for unit tests and property tests.
    pub fn small() -> Self {
        CrashMonkeyConfig {
            device_blocks: 4096,
            ..CrashMonkeyConfig::default()
        }
    }

    /// A configuration that crashes at every persistence point.
    pub fn exhaustive_crash_points() -> Self {
        CrashMonkeyConfig {
            crash_points: CrashPointPolicy::All,
            ..CrashMonkeyConfig::small()
        }
    }

    /// A configuration that covers every persistence point with verdict
    /// triage (see [`CrashPointPolicy::AllTriaged`]).
    pub fn triaged_crash_points() -> Self {
        CrashMonkeyConfig {
            crash_points: CrashPointPolicy::AllTriaged { audit: 0 },
            ..CrashMonkeyConfig::small()
        }
    }

    /// The kernel-imposed delay (in seconds) the paper measured per
    /// workload: ~1 s mount delay + 2 s settle delay + ~0.9 s of other
    /// kernel-side waits, i.e. 84% of the 4.6 s end-to-end latency.
    pub fn modeled_kernel_delay_seconds(&self) -> f64 {
        if self.model_kernel_delays {
            4.6 * 0.84
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_device_size() {
        let config = CrashMonkeyConfig::default();
        assert_eq!(config.device_blocks * BLOCK_SIZE as u64, 100 * 1024 * 1024);
        assert_eq!(config.crash_points, CrashPointPolicy::LastOnly);
    }

    #[test]
    fn modeled_delay_only_when_enabled() {
        assert_eq!(
            CrashMonkeyConfig::default().modeled_kernel_delay_seconds(),
            0.0
        );
        let modeled = CrashMonkeyConfig {
            model_kernel_delays: true,
            ..CrashMonkeyConfig::default()
        };
        assert!((modeled.modeled_kernel_delay_seconds() - 3.864).abs() < 1e-9);
    }
}
