//! Phase 3: the AutoChecker.
//!
//! "CRASHMONKEY's AutoChecker is able to test for correctness automatically
//! because it has three key pieces of information: it knows which files were
//! persisted, it has the correct data and metadata of those files in the
//! oracle, and it has the actual data and metadata of the corresponding
//! files in the crash state after recovery." (§5.1)
//!
//! The read checks compare, for every explicitly persisted path, the state
//! the persistence operation guaranteed against the recovered state. A
//! recovered entry is also accepted if it exactly matches the full oracle at
//! the crash point — file systems are allowed to persist *more* than was
//! requested (ext4's whole-transaction fsync does), just never less.
//!
//! The write checks then exercise the recovered file system: new files must
//! be creatable, and persisted directories must be removable once emptied —
//! catching the "directory un-removable" and "cannot create files" bug
//! classes that do not show up as missing or corrupt data.

use b3_block::CowSnapshotDevice;
use b3_vfs::error::FsError;
use b3_vfs::fs::{FileSystem, FsSpec};
use b3_vfs::metadata::FileType;
use b3_vfs::path::{join, normalize, parent};
use b3_vfs::snapshot::{EntrySnapshot, LogicalSnapshot, SnapshotDiff};
use b3_vfs::workload::{Op, Workload};

use crate::config::CrashMonkeyConfig;
use crate::profiler::{CheckpointInfo, ProfileResult};
use crate::report::{BugReport, Consequence};

/// The outcome of checking one crash state.
///
/// Deliberately free of workload identity (no name or skeleton): identity is
/// attached by [`CheckVerdict::into_report`], which is what lets the triage
/// cache reuse a verdict across workloads. Equality compares every field;
/// the triage audit relies on it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckVerdict {
    /// Read-check differences (persisted state not recovered correctly).
    pub diffs: Vec<SnapshotDiff>,
    /// Consequences derived from the read-check differences.
    pub read_consequences: Vec<Consequence>,
    /// Write-check failures, human readable.
    pub write_failures: Vec<String>,
    /// Consequences derived from the write checks.
    pub write_consequences: Vec<Consequence>,
    /// Set when the crash state could not even be mounted.
    pub unmountable: Option<String>,
    /// Summary of the expected state (for the bug report).
    pub expected: String,
    /// Summary of the observed state (for the bug report).
    pub actual: String,
}

impl CheckVerdict {
    /// True if any check failed.
    pub fn failed(&self) -> bool {
        self.unmountable.is_some() || !self.diffs.is_empty() || !self.write_failures.is_empty()
    }

    /// The most severe consequence observed, if any.
    pub fn consequence(&self) -> Option<Consequence> {
        if self.unmountable.is_some() {
            return Some(Consequence::Unmountable);
        }
        self.read_consequences
            .iter()
            .chain(self.write_consequences.iter())
            .copied()
            .max()
    }

    /// Converts a failed verdict into a bug report (None when all checks
    /// passed).
    pub fn into_report(
        self,
        workload: &Workload,
        fs_name: &str,
        crash_point: u32,
    ) -> Option<BugReport> {
        if !self.failed() {
            return None;
        }
        let consequence = self.consequence().unwrap_or(Consequence::DataCorruption);
        let mut all_consequences: Vec<Consequence> = self
            .read_consequences
            .iter()
            .chain(self.write_consequences.iter())
            .copied()
            .collect();
        if self.unmountable.is_some() {
            all_consequences.push(Consequence::Unmountable);
        }
        all_consequences.sort();
        all_consequences.dedup();
        Some(BugReport {
            workload_name: workload.name.clone(),
            skeleton: workload.skeleton_string(),
            fs_name: fs_name.to_string(),
            crash_point,
            consequence,
            all_consequences,
            expected: self.expected,
            actual: self.actual,
            diffs: self.diffs,
            write_check_failures: self.write_failures,
        })
    }
}

/// The AutoChecker for one file system and configuration.
pub struct AutoChecker<'a> {
    spec: &'a dyn FsSpec,
    #[allow(dead_code)]
    config: &'a CrashMonkeyConfig,
}

impl<'a> AutoChecker<'a> {
    /// Creates a checker.
    pub fn new(spec: &'a dyn FsSpec, config: &'a CrashMonkeyConfig) -> Self {
        AutoChecker { spec, config }
    }

    /// Checks one crash state against the expectations captured at the
    /// corresponding checkpoint, mounting the state from scratch.
    pub fn check(
        &self,
        workload: &Workload,
        profile: &ProfileResult,
        info: &CheckpointInfo,
        state: CowSnapshotDevice,
    ) -> CheckVerdict {
        let mounted = self.spec.mount(Box::new(state.clone()));
        self.check_recovered(workload, profile, info, state, mounted)
    }

    /// Checks one crash state whose recovery has already been attempted
    /// (e.g. by a [`RecoverySession`](crate::RecoverySession) patching the
    /// view forward). `state` is the raw crash-state device, used only for
    /// fsck when `recovered` is an error.
    pub fn check_recovered(
        &self,
        workload: &Workload,
        _profile: &ProfileResult,
        info: &CheckpointInfo,
        state: CowSnapshotDevice,
        recovered: b3_vfs::error::FsResult<Box<dyn b3_vfs::fs::FileSystem>>,
    ) -> CheckVerdict {
        let mut verdict = CheckVerdict::default();

        // The file system ran its recovery when the crash state was
        // mounted. If that failed, run the offline checker (fsck) for the
        // report.
        let mut fsck_device = state;
        let mut fs = match recovered {
            Ok(fs) => fs,
            Err(error) => {
                let fsck = self
                    .spec
                    .fsck(&mut fsck_device)
                    .unwrap_or_else(|e| format!("fsck unavailable: {e}"));
                verdict.unmountable = Some(error.to_string());
                verdict.expected = "mountable file system".to_string();
                verdict.actual = format!("{error}; {fsck}");
                return verdict;
            }
        };

        // The checks below only ever look at explicitly persisted paths and
        // the rename pairs, so capture exactly those from the recovered
        // state instead of walking the whole file system and reading every
        // file's data per crash state.
        let rename_pairs = rename_candidates(workload, info);
        let relevant: std::collections::BTreeSet<&str> = info
            .persisted
            .keys()
            .map(String::as_str)
            .chain(
                rename_pairs
                    .iter()
                    .chain(info.durable_renames.iter())
                    .flat_map(|(from, to)| [from.as_str(), to.as_str()]),
            )
            .collect();
        let crash_snapshot = match LogicalSnapshot::capture_paths(fs.as_ref(), relevant) {
            Ok(snapshot) => snapshot,
            Err(error) => {
                verdict.unmountable = Some(format!("recovered file system unreadable: {error}"));
                verdict.expected = "readable file system".to_string();
                verdict.actual = error.to_string();
                return verdict;
            }
        };

        self.read_checks(info, &crash_snapshot, &mut verdict);
        self.rename_atomicity_check(
            &rename_pairs,
            info,
            &crash_snapshot,
            fs.as_ref(),
            &mut verdict,
        );
        self.durable_rename_check(info, &crash_snapshot, fs.as_ref(), &mut verdict);
        self.write_checks(info, fs.as_mut(), &mut verdict);

        if verdict.expected.is_empty() {
            verdict.expected = summarize_expectations(info);
        }
        if verdict.actual.is_empty() {
            verdict.actual = if verdict.failed() {
                let mut parts: Vec<String> =
                    verdict.diffs.iter().map(ToString::to_string).collect();
                parts.extend(verdict.write_failures.clone());
                parts.join("; ")
            } else {
                "recovered state matches all persisted files".to_string()
            };
        }
        verdict
    }

    /// Read checks: every persisted path must be recovered with the state
    /// its persistence guaranteed.
    fn read_checks(
        &self,
        info: &CheckpointInfo,
        crash: &LogicalSnapshot,
        verdict: &mut CheckVerdict,
    ) {
        for (path, expectation) in &info.persisted {
            // Paths legitimately removed or renamed away after being
            // persisted are no longer guaranteed.
            if !info.oracle.contains(path) {
                continue;
            }
            let Some(actual) = crash.get(path) else {
                verdict
                    .diffs
                    .push(SnapshotDiff::Missing { path: path.clone() });
                verdict
                    .read_consequences
                    .push(match expectation.entry.file_type {
                        FileType::Directory => Consequence::DirectoryMissing,
                        _ => Consequence::FileMissing,
                    });
                continue;
            };

            let diffs = if expectation.existence_only {
                existence_diffs(path, &expectation.entry, actual)
            } else {
                full_diffs(path, &expectation.entry, actual)
            };
            if diffs.is_empty() {
                continue;
            }
            // Tolerate recovered state that exactly matches the full oracle:
            // the file system persisted more than required, which is legal.
            if info.oracle.get(path) == Some(actual) {
                continue;
            }
            for diff in diffs {
                verdict.read_consequences.push(classify_diff(&diff));
                verdict.diffs.push(diff);
            }
        }
    }

    /// Rename atomicity: if a persisted file was renamed, recovery must not
    /// leave the *same object* visible under both the old and new name.
    ///
    /// Both names being present is not by itself a violation: when the
    /// rename overwrote an existing destination, a crash state that simply
    /// predates the rename legally shows the source alongside the old
    /// destination file. Only when the recovered `from` and `to` entries
    /// resolve to one inode has a rename been half-applied.
    fn rename_atomicity_check(
        &self,
        candidates: &[(String, String)],
        info: &CheckpointInfo,
        crash: &LogicalSnapshot,
        fs: &dyn FileSystem,
        verdict: &mut CheckVerdict,
    ) {
        for (from, to) in candidates {
            if crash.contains(to)
                && crash.contains(from)
                && !info.oracle.contains(from)
                && same_inode(fs, from, to)
            {
                verdict
                    .diffs
                    .push(SnapshotDiff::Unexpected { path: from.clone() });
                verdict
                    .read_consequences
                    .push(Consequence::FileInBothLocations);
            }
        }
    }

    /// Op-order-aware durable-rename check: when the rename itself was made
    /// durable (its new name fsynced, or a sync ran, *after* the rename),
    /// the old name must be gone entirely. The same-inode case is covered by
    /// [`AutoChecker::rename_atomicity_check`]; this one catches recovery
    /// resurrecting the old name as a **distinct** inode — stale content
    /// reappearing under a name the crash state has no business recreating
    /// (ROADMAP "Rename-atomicity coverage").
    ///
    /// The old name legitimately reused by a later operation is not a
    /// violation: in that case the path is part of the oracle and the guard
    /// stays silent.
    fn durable_rename_check(
        &self,
        info: &CheckpointInfo,
        crash: &LogicalSnapshot,
        fs: &dyn FileSystem,
        verdict: &mut CheckVerdict,
    ) {
        for (from, to) in &info.durable_renames {
            if crash.contains(to)
                && crash.contains(from)
                && !info.oracle.contains(from)
                && !same_inode(fs, from, to)
            {
                verdict
                    .diffs
                    .push(SnapshotDiff::Unexpected { path: from.clone() });
                verdict
                    .read_consequences
                    .push(Consequence::FileInBothLocations);
            }
        }
    }

    /// Write checks: the recovered file system must still be usable.
    fn write_checks(
        &self,
        info: &CheckpointInfo,
        fs: &mut dyn FileSystem,
        verdict: &mut CheckVerdict,
    ) {
        // New files must be creatable.
        const PROBE: &str = "crashmonkey_write_probe";
        match fs.create(PROBE) {
            Ok(()) => {
                let _ = fs.unlink(PROBE);
            }
            Err(FsError::AlreadyExists(_)) => {}
            Err(error) => {
                verdict
                    .write_failures
                    .push(format!("cannot create new files after recovery: {error}"));
                verdict
                    .write_consequences
                    .push(Consequence::CannotCreateFiles);
            }
        }

        // Persisted directories (and the parents of persisted files) must be
        // removable once emptied.
        let mut dirs: Vec<String> = Vec::new();
        for (path, expectation) in &info.persisted {
            if expectation.entry.file_type == FileType::Directory && !path.is_empty() {
                dirs.push(path.clone());
            }
            if let Ok(parent_path) = parent(path) {
                if !parent_path.is_empty() && !dirs.contains(&parent_path) {
                    dirs.push(parent_path);
                }
            }
        }
        // Remove the deepest directories first.
        dirs.sort_by_key(|d| std::cmp::Reverse(b3_vfs::path::depth(d)));
        dirs.dedup();
        for dir in dirs {
            if !fs.exists(&dir) {
                continue;
            }
            if let Err(error) = remove_recursively(fs, &dir) {
                verdict.write_failures.push(format!(
                    "directory '{dir}' cannot be removed after recovery: {error}"
                ));
                verdict
                    .write_consequences
                    .push(Consequence::DirectoryUnremovable);
            }
        }
    }
}

/// The rename pairs the atomicity check must consider: renames whose
/// destination was explicitly persisted, plus renames whose source had been
/// persisted before the rename executed (tracked by the profiler).
fn rename_candidates(workload: &Workload, info: &CheckpointInfo) -> Vec<(String, String)> {
    let explicit = workload.all_ops().filter_map(|op| match op {
        Op::Rename { from, to } => {
            let to = normalize(to);
            info.persisted
                .contains_key(&to)
                .then(|| (normalize(from), to))
        }
        _ => None,
    });
    let tracked = info.persisted_renames.iter().cloned();
    let mut candidates: Vec<(String, String)> = explicit.chain(tracked).collect();
    candidates.sort();
    candidates.dedup();
    candidates
}

/// True when both paths resolve to the same inode in the recovered file
/// system. Directories cannot be hard-linked, so for a rename pair this
/// means the rename was applied without the old name being removed.
fn same_inode(fs: &dyn FileSystem, from: &str, to: &str) -> bool {
    match (fs.metadata(from), fs.metadata(to)) {
        (Ok(from_meta), Ok(to_meta)) => from_meta.ino == to_meta.ino,
        _ => false,
    }
}

/// Recursively removes a directory and its contents.
fn remove_recursively(fs: &mut dyn FileSystem, path: &str) -> Result<(), FsError> {
    let entries = fs.readdir(path)?;
    for name in entries {
        let child = join(path, &name);
        match fs.metadata(&child) {
            Ok(meta) if meta.is_dir() => remove_recursively(fs, &child)?,
            Ok(_) => fs.unlink(&child)?,
            // A dangling entry: readdir lists it but it cannot be resolved,
            // so it can neither be unlinked nor will rmdir succeed.
            Err(error) => return Err(error),
        }
    }
    fs.rmdir(path)
}

/// Differences when only existence (and identity) is guaranteed.
fn existence_diffs(
    path: &str,
    expected: &EntrySnapshot,
    actual: &EntrySnapshot,
) -> Vec<SnapshotDiff> {
    let mut diffs = Vec::new();
    if expected.file_type != actual.file_type {
        diffs.push(SnapshotDiff::TypeMismatch {
            path: path.to_string(),
            expected: expected.file_type,
            actual: actual.file_type,
        });
    } else if expected.file_type == FileType::Symlink
        && expected.symlink_target != actual.symlink_target
    {
        diffs.push(SnapshotDiff::SymlinkMismatch {
            path: path.to_string(),
            expected: expected.symlink_target.clone(),
            actual: actual.symlink_target.clone(),
        });
    }
    diffs
}

/// Full data + metadata comparison of a persisted entry.
fn full_diffs(path: &str, expected: &EntrySnapshot, actual: &EntrySnapshot) -> Vec<SnapshotDiff> {
    let mut diffs = Vec::new();
    if expected.file_type != actual.file_type {
        diffs.push(SnapshotDiff::TypeMismatch {
            path: path.to_string(),
            expected: expected.file_type,
            actual: actual.file_type,
        });
        return diffs;
    }
    if expected.file_type == FileType::Directory {
        // A directory's size, link count and block count are internal
        // bookkeeping that legally changes when later (persisted) operations
        // add or remove entries; what must survive are the entries
        // themselves, which are covered by per-child existence expectations.
        return diffs;
    }
    if expected.size != actual.size {
        diffs.push(SnapshotDiff::SizeMismatch {
            path: path.to_string(),
            expected: expected.size,
            actual: actual.size,
        });
    }
    if expected.nlink != actual.nlink {
        diffs.push(SnapshotDiff::NlinkMismatch {
            path: path.to_string(),
            expected: expected.nlink,
            actual: actual.nlink,
        });
    }
    if expected.blocks != actual.blocks {
        diffs.push(SnapshotDiff::BlocksMismatch {
            path: path.to_string(),
            expected: expected.blocks,
            actual: actual.blocks,
        });
    }
    if expected.file_type == FileType::Regular && expected.data != actual.data {
        let first = match (&expected.data, &actual.data) {
            (Some(e), Some(a)) => e
                .iter()
                .zip(a.iter())
                .position(|(x, y)| x != y)
                .map(|i| i as u64)
                .or(Some(e.len().min(a.len()) as u64)),
            _ => None,
        };
        diffs.push(SnapshotDiff::DataMismatch {
            path: path.to_string(),
            first_difference: first,
        });
    }
    if expected.file_type == FileType::Symlink && expected.symlink_target != actual.symlink_target {
        diffs.push(SnapshotDiff::SymlinkMismatch {
            path: path.to_string(),
            expected: expected.symlink_target.clone(),
            actual: actual.symlink_target.clone(),
        });
    }
    if expected.xattrs != actual.xattrs {
        diffs.push(SnapshotDiff::XattrMismatch {
            path: path.to_string(),
            expected: expected.xattrs.keys().cloned().collect(),
            actual: actual.xattrs.keys().cloned().collect(),
        });
    }
    diffs
}

/// Maps a read-check difference to its consequence class.
fn classify_diff(diff: &SnapshotDiff) -> Consequence {
    match diff {
        SnapshotDiff::Missing { .. } => Consequence::FileMissing,
        SnapshotDiff::Unexpected { .. } => Consequence::FileInBothLocations,
        SnapshotDiff::TypeMismatch { .. } => Consequence::DataCorruption,
        SnapshotDiff::SizeMismatch {
            expected, actual, ..
        } => {
            if actual < expected {
                Consequence::DataLoss
            } else {
                Consequence::WrongSize
            }
        }
        SnapshotDiff::NlinkMismatch { .. } => Consequence::DataCorruption,
        SnapshotDiff::BlocksMismatch {
            expected, actual, ..
        } => {
            if actual < expected {
                Consequence::BlocksLost
            } else {
                Consequence::WrongSize
            }
        }
        SnapshotDiff::DataMismatch { .. } => Consequence::DataCorruption,
        SnapshotDiff::SymlinkMismatch { actual, .. } => {
            if actual.as_deref() == Some("") {
                Consequence::SymlinkEmpty
            } else {
                Consequence::DataCorruption
            }
        }
        SnapshotDiff::XattrMismatch { .. } => Consequence::XattrInconsistent,
    }
}

/// One-line summary of what was expected at a checkpoint.
fn summarize_expectations(info: &CheckpointInfo) -> String {
    let paths: Vec<String> = info
        .persisted
        .iter()
        .map(|(path, expectation)| {
            let name = if path.is_empty() { "/" } else { path.as_str() };
            match expectation.entry.file_type {
                FileType::Regular => format!("{name} ({} bytes)", expectation.entry.size),
                FileType::Directory => format!("{name}/"),
                FileType::Symlink => format!("{name} -> target"),
                FileType::Fifo => format!("{name} (fifo)"),
            }
        })
        .collect();
    format!("persisted: {}", paths.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::Expectation;
    use std::collections::BTreeMap;

    fn entry(file_type: FileType, size: u64) -> EntrySnapshot {
        EntrySnapshot {
            file_type,
            size,
            nlink: 1,
            blocks: size.div_ceil(512),
            data: (file_type == FileType::Regular).then(|| vec![1u8; size as usize]),
            symlink_target: None,
            children: None,
            xattrs: BTreeMap::new(),
        }
    }

    #[test]
    fn classify_size_shrink_as_data_loss() {
        let diff = SnapshotDiff::SizeMismatch {
            path: "foo".into(),
            expected: 4096,
            actual: 0,
        };
        assert_eq!(classify_diff(&diff), Consequence::DataLoss);
        let grow = SnapshotDiff::SizeMismatch {
            path: "foo".into(),
            expected: 4096,
            actual: 8192,
        };
        assert_eq!(classify_diff(&grow), Consequence::WrongSize);
    }

    #[test]
    fn classify_blocks_shrink_as_blocks_lost() {
        let diff = SnapshotDiff::BlocksMismatch {
            path: "foo".into(),
            expected: 32,
            actual: 16,
        };
        assert_eq!(classify_diff(&diff), Consequence::BlocksLost);
    }

    #[test]
    fn classify_empty_symlink() {
        let diff = SnapshotDiff::SymlinkMismatch {
            path: "ln".into(),
            expected: Some("foo".into()),
            actual: Some(String::new()),
        };
        assert_eq!(classify_diff(&diff), Consequence::SymlinkEmpty);
    }

    #[test]
    fn full_diffs_report_each_field() {
        let expected = entry(FileType::Regular, 4096);
        let mut actual = entry(FileType::Regular, 2048);
        actual.data = Some(vec![2u8; 2048]);
        let diffs = full_diffs("foo", &expected, &actual);
        let tags: Vec<&str> = diffs.iter().map(SnapshotDiff::tag).collect();
        assert!(tags.contains(&"size"));
        assert!(tags.contains(&"blocks"));
        assert!(tags.contains(&"data"));
    }

    #[test]
    fn existence_diffs_only_check_identity() {
        let expected = entry(FileType::Regular, 4096);
        let actual = entry(FileType::Regular, 0);
        assert!(existence_diffs("foo", &expected, &actual).is_empty());
        let dir_actual = entry(FileType::Directory, 0);
        assert_eq!(existence_diffs("foo", &expected, &dir_actual).len(), 1);
    }

    #[test]
    fn verdict_consequence_is_most_severe() {
        let mut verdict = CheckVerdict::default();
        assert!(verdict.consequence().is_none());
        verdict.read_consequences.push(Consequence::DataLoss);
        verdict
            .write_consequences
            .push(Consequence::DirectoryUnremovable);
        assert_eq!(
            verdict.consequence(),
            Some(Consequence::DirectoryUnremovable)
        );
        verdict.unmountable = Some("boom".into());
        assert_eq!(verdict.consequence(), Some(Consequence::Unmountable));
    }

    #[test]
    fn summarize_expectations_lists_paths() {
        let mut persisted = BTreeMap::new();
        persisted.insert(
            "A/foo".to_string(),
            Expectation {
                entry: entry(FileType::Regular, 100).into(),
                existence_only: false,
            },
        );
        let info = CheckpointInfo {
            id: 1,
            op_index: 0,
            op_description: "fsync A/foo".into(),
            persisted,
            persisted_renames: Vec::new(),
            durable_renames: Vec::new(),
            oracle: std::sync::Arc::new(LogicalSnapshot::default()),
        };
        let summary = summarize_expectations(&info);
        assert!(summary.contains("A/foo (100 bytes)"));
    }

    /// End to end through CrashMonkey: `write; sync; rename; fsync(new)` on
    /// the 4.16-era CowFs resurrects the old name as a *distinct* inode —
    /// invisible to the same-inode atomicity check, caught by the
    /// op-order-aware durable-rename check. The same workload is clean on a
    /// patched file system, and a rename that was never made durable is not
    /// flagged.
    #[test]
    fn durable_rename_distinct_inode_resurrection_is_flagged() {
        use crate::CrashMonkey;
        use b3_fs_cow::CowFsSpec;
        use b3_vfs::fs::WriteMode;
        use b3_vfs::workload::{Workload, WriteSpec};
        use b3_vfs::KernelEra;

        let workload = Workload::with_setup(
            "durable-rename",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Mkdir { path: "B".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Write {
                    path: "A/foo".into(),
                    mode: WriteMode::Buffered,
                    spec: WriteSpec::range(0, 8192),
                },
                Op::Sync,
                Op::Rename {
                    from: "A/foo".into(),
                    to: "B/foo".into(),
                },
                Op::Fsync {
                    path: "B/foo".into(),
                },
            ],
        );

        let buggy = CowFsSpec::new(KernelEra::V4_16);
        let outcome = CrashMonkey::new(&buggy).test_workload(&workload).unwrap();
        assert!(
            outcome.bugs.iter().any(|b| b
                .all_consequences
                .contains(&Consequence::FileInBothLocations)),
            "distinct-inode resurrection must be flagged: {:?}",
            outcome.bugs
        );

        let patched = CowFsSpec::patched();
        let outcome = CrashMonkey::new(&patched).test_workload(&workload).unwrap();
        assert!(
            outcome.bugs.is_empty(),
            "no false positive on patched: {:?}",
            outcome.bugs
        );
    }
}
