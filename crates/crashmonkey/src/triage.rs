//! Verdict triage: content-addressed reuse of crash-state check results.
//!
//! [`CrashPointPolicy::AllTriaged`](crate::CrashPointPolicy::AllTriaged)
//! covers every persistence point but only *dynamically tests* crash states
//! the static layer cannot prove equivalent to one already tested.
//! Equivalence is established by a **triage key** that fingerprints every
//! input of [`AutoChecker::check_recovered`](crate::AutoChecker):
//!
//! * the crash state's **content digest** — a
//!   [`StateDigest`](b3_analyze::StateDigest) over the recorded IO stream,
//!   i.e. the device bytes the checker would mount (the base image is fixed
//!   per harness, so the digest of the writes on top of it pins the full
//!   image);
//! * the checkpoint's **checker projection** — the persisted expectations,
//!   the persisted/durable rename sets, the oracle entries at every path the
//!   checker reads, and the workload's rename operations (which seed the
//!   rename-atomicity candidates).
//!
//! Two crash states with equal keys present the checker with bit-identical
//! inputs, so the verdict recorded for the first — the *witness* — is reused
//! verbatim for the second. Only verdict-determined fields are cached;
//! workload identity (name, skeleton) is re-attached when a reused verdict
//! is turned into a report, which is what makes `AllTriaged` bug groups
//! byte-identical to [`CrashPointPolicy::All`](crate::CrashPointPolicy::All)
//! by construction. The differential suite and the optional per-workload
//! audit (the analysis-layer analogue of the sweep's `PruneMode::Audit`)
//! both pin that claim dynamically.

use std::collections::HashMap;
use std::sync::Arc;

use b3_analyze::Digest128;
use b3_vfs::snapshot::EntrySnapshot;
use b3_vfs::workload::{Op, Workload};

use crate::checker::CheckVerdict;
use crate::profiler::CheckpointInfo;

/// A cache of check verdicts keyed by triage key, scoped to one harness
/// (fixed file-system spec, era, and device geometry — all of which are
/// constant for a [`CrashMonkey`](crate::CrashMonkey) instance, so they
/// need not be part of the key).
#[derive(Debug, Default)]
pub(crate) struct TriageCache {
    verdicts: HashMap<u128, CheckVerdict>,
    /// Per-entry digest memo, keyed by `Arc` pointer identity. Oracle
    /// entries are interned (`EntryInterner`), so the same snapshot is
    /// revisited at checkpoint after checkpoint; hashing its data payload
    /// once instead of every time is what keeps key construction off the
    /// profile. The memoized `Weak` pins the *allocation* (an `ArcInner` is
    /// not freed while weak references remain), so a pointer in this map can
    /// never be reused for different content — pointer equality alone proves
    /// the memoized digest applies — while the entry's heap payload is still
    /// freed the moment the last `Arc` drops.
    entry_digests: HashMap<usize, (std::sync::Weak<EntrySnapshot>, u128)>,
}

/// The workload-constant part of a triage key, computed once per workload
/// and shared by every checkpoint's [`TriageCache::key`] call. Hoisting it
/// matters: under `AllTriaged` the key is on the per-crash-state hot path,
/// and the rename list (plus its digest) never changes within a workload.
pub(crate) struct KeySeed<'w> {
    /// Every `(from, to)` rename of the workload, in program order. These
    /// seed the checker's rename-atomicity candidates, so their endpoints
    /// are part of the relevant-path set of every checkpoint.
    rename_ops: Vec<(&'w str, &'w str)>,
    /// Digest of the domain-separated rename-op section, absorbed into each
    /// key as a single chunk.
    rename_section: u128,
}

impl<'w> KeySeed<'w> {
    pub(crate) fn of(workload: &'w Workload) -> Self {
        let rename_ops: Vec<(&str, &str)> = workload
            .all_ops()
            .filter_map(|op| match op {
                Op::Rename { from, to } => Some((from.as_str(), to.as_str())),
                _ => None,
            })
            .collect();
        let mut d = Digest128::new();
        d.write(&[3u8]);
        d.write_u64(rename_ops.len() as u64);
        for (from, to) in &rename_ops {
            d.write_str(from);
            d.write_str(to);
        }
        KeySeed {
            rename_section: d.value(),
            rename_ops,
        }
    }
}

/// Upper bound on recorded witnesses. On overflow the whole verdict map is
/// dropped (an epoch flip, like a shard boundary): later states re-test
/// dynamically, which is always sound. The flip point is a deterministic
/// function of the workload sequence, so shard results stay reproducible.
const VERDICT_CAP: usize = 262_144;

/// Upper bound on memoized entry digests. The memo pins its `Arc`s (that is
/// what makes pointer identity safe), so an unbounded memo would defeat the
/// interner's eviction; clearing it is semantically free — digests are pure
/// content functions.
const ENTRY_MEMO_CAP: usize = 32_768;

impl TriageCache {
    /// Drops every cached verdict (and the entry-digest memo). Shard
    /// boundaries call this so a shard's outcome never depends on which
    /// other shards ran in the same process.
    pub(crate) fn reset(&mut self) {
        self.verdicts.clear();
        self.entry_digests.clear();
    }

    /// The witness verdict for `key`, if one was recorded.
    pub(crate) fn lookup(&self, key: u128) -> Option<&CheckVerdict> {
        self.verdicts.get(&key)
    }

    /// Records the verdict of a dynamically tested crash state.
    pub(crate) fn record(&mut self, key: u128, verdict: &CheckVerdict) {
        if self.verdicts.len() >= VERDICT_CAP {
            self.verdicts.clear();
        }
        self.verdicts.insert(key, verdict.clone());
    }

    /// Number of distinct witnesses recorded.
    pub(crate) fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// The content digest of one entry snapshot, memoized by `Arc` identity.
    fn entry_digest(&mut self, entry: &Arc<EntrySnapshot>) -> u128 {
        let ptr = Arc::as_ptr(entry) as usize;
        if let Some((_, digest)) = self.entry_digests.get(&ptr) {
            return *digest;
        }
        let mut d = Digest128::new();
        digest_entry(&mut d, entry);
        let digest = d.value();
        if self.entry_digests.len() >= ENTRY_MEMO_CAP {
            self.entry_digests.clear();
        }
        self.entry_digests
            .insert(ptr, (Arc::downgrade(entry), digest));
        digest
    }

    /// Computes the triage key for one crash point: the crash state's
    /// content digest combined with the checker projection of its
    /// checkpoint.
    pub(crate) fn key(
        &mut self,
        state_digest: u128,
        seed: &KeySeed<'_>,
        info: &CheckpointInfo,
    ) -> u128 {
        let mut d = Digest128::new();
        d.write(&state_digest.to_le_bytes());

        // Persisted expectations: path, strength, and the exact entry state
        // the persistence operation guaranteed.
        d.write_u64(info.persisted.len() as u64);
        for (path, expectation) in &info.persisted {
            d.write_str(path);
            d.write(&[u8::from(expectation.existence_only)]);
            let entry = self.entry_digest(&expectation.entry);
            d.write(&entry.to_le_bytes());
        }

        // Rename sets, each with a domain separator so an entry moving
        // between lists changes the key.
        for (tag, renames) in [(1u8, &info.persisted_renames), (2u8, &info.durable_renames)] {
            d.write(&[tag]);
            d.write_u64(renames.len() as u64);
            for (from, to) in renames {
                d.write_str(from);
                d.write_str(to);
            }
        }

        // The workload's rename operations, in program order: together with
        // the persisted set above they determine the checker's
        // rename-atomicity candidate pairs. Precomputed per workload and
        // absorbed as one chunk.
        d.write(&seed.rename_section.to_le_bytes());

        // Oracle state at every path the checker can read: the persisted
        // paths plus both endpoints of every rename the checks may consult.
        // This is a superset of the checker's `relevant` set, so equal keys
        // imply equal oracle views wherever the checks look. Sorted and
        // deduplicated so the digest does not depend on discovery order.
        let mut relevant: Vec<&str> = Vec::with_capacity(
            info.persisted.len()
                + 2 * (seed.rename_ops.len()
                    + info.persisted_renames.len()
                    + info.durable_renames.len()),
        );
        relevant.extend(info.persisted.keys().map(String::as_str));
        for (from, to) in seed
            .rename_ops
            .iter()
            .copied()
            .chain(
                info.persisted_renames
                    .iter()
                    .map(|(f, t)| (f.as_str(), t.as_str())),
            )
            .chain(
                info.durable_renames
                    .iter()
                    .map(|(f, t)| (f.as_str(), t.as_str())),
            )
        {
            relevant.push(from);
            relevant.push(to);
        }
        relevant.sort_unstable();
        relevant.dedup();
        d.write(&[4u8]);
        d.write_u64(relevant.len() as u64);
        for path in relevant {
            d.write_str(path);
            match info.oracle.get_shared(path) {
                Some(entry) => {
                    d.write(&[1]);
                    let entry = self.entry_digest(&entry);
                    d.write(&entry.to_le_bytes());
                }
                None => d.write(&[0]),
            }
        }

        d.value()
    }
}

/// Digests every field of an entry snapshot, length-prefixing the variable
/// parts so adjacent fields cannot alias.
fn digest_entry(d: &mut Digest128, entry: &EntrySnapshot) {
    d.write(&[match entry.file_type {
        b3_vfs::metadata::FileType::Regular => 0u8,
        b3_vfs::metadata::FileType::Directory => 1,
        b3_vfs::metadata::FileType::Symlink => 2,
        b3_vfs::metadata::FileType::Fifo => 3,
    }]);
    d.write_u64(entry.size);
    d.write_u32(entry.nlink);
    d.write_u64(entry.blocks);
    match &entry.data {
        Some(data) => {
            d.write(&[1]);
            d.write_u64(data.len() as u64);
            d.write(data);
        }
        None => d.write(&[0]),
    }
    match &entry.symlink_target {
        Some(target) => {
            d.write(&[1]);
            d.write_str(target);
        }
        None => d.write(&[0]),
    }
    match &entry.children {
        Some(children) => {
            d.write(&[1]);
            d.write_u64(children.len() as u64);
            for child in children {
                d.write_str(child);
            }
        }
        None => d.write(&[0]),
    }
    d.write_u64(entry.xattrs.len() as u64);
    for (name, value) in &entry.xattrs {
        d.write_str(name);
        d.write_u64(value.len() as u64);
        d.write(value);
    }
}

/// Describes how a fresh (audited) verdict diverged from its cached witness.
/// `None` when they agree.
pub(crate) fn audit_divergence(
    checkpoint: u32,
    cached: &CheckVerdict,
    fresh: &CheckVerdict,
) -> Option<String> {
    if cached == fresh {
        return None;
    }
    Some(format!(
        "crash point {checkpoint}: cached verdict (failed={}, {} diffs, {} write failures) \
         != fresh verdict (failed={}, {} diffs, {} write failures)",
        cached.failed(),
        cached.diffs.len(),
        cached.write_failures.len(),
        fresh.failed(),
        fresh.diffs.len(),
        fresh.write_failures.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use b3_vfs::metadata::FileType;
    use b3_vfs::snapshot::LogicalSnapshot;

    use crate::profiler::Expectation;

    fn entry(file_type: FileType, size: u64, data: Option<&[u8]>) -> Arc<EntrySnapshot> {
        Arc::new(EntrySnapshot {
            file_type,
            size,
            nlink: 1,
            blocks: size.div_ceil(512),
            data: data.map(<[u8]>::to_vec),
            symlink_target: None,
            children: None,
            xattrs: BTreeMap::new(),
        })
    }

    fn info_with(persisted: Vec<(&str, Arc<EntrySnapshot>)>) -> CheckpointInfo {
        let mut oracle = LogicalSnapshot::default();
        let mut map = BTreeMap::new();
        for (path, e) in persisted {
            oracle.insert(path.to_string(), (*e).clone());
            map.insert(
                path.to_string(),
                Expectation {
                    entry: e,
                    existence_only: false,
                },
            );
        }
        CheckpointInfo {
            id: 1,
            op_index: 0,
            op_description: "fsync foo".into(),
            persisted: map,
            persisted_renames: Vec::new(),
            durable_renames: Vec::new(),
            oracle: Arc::new(oracle),
        }
    }

    #[test]
    fn key_ignores_workload_identity_but_not_renames() {
        let mut cache = TriageCache::default();
        let info = info_with(vec![("foo", entry(FileType::Regular, 4, Some(b"data")))]);
        let a = Workload::new("name-a", vec![Op::Creat { path: "foo".into() }]);
        let b = Workload::new("name-b", vec![Op::Mkdir { path: "X".into() }]);
        let (seed_a, seed_b) = (KeySeed::of(&a), KeySeed::of(&b));
        assert_eq!(cache.key(7, &seed_a, &info), cache.key(7, &seed_b, &info));

        let with_rename = Workload::new(
            "name-c",
            vec![Op::Rename {
                from: "foo".into(),
                to: "bar".into(),
            }],
        );
        assert_ne!(
            cache.key(7, &seed_a, &info),
            cache.key(7, &KeySeed::of(&with_rename), &info)
        );

        // The entry-digest memo must not change what a key hashes to: a
        // fresh cache (empty memo) computes the same key.
        assert_eq!(
            TriageCache::default().key(7, &seed_a, &info),
            cache.key(7, &seed_a, &info)
        );
    }

    #[test]
    fn key_depends_on_state_digest_and_projection() {
        let mut cache = TriageCache::default();
        let info = info_with(vec![("foo", entry(FileType::Regular, 4, Some(b"data")))]);
        let w = Workload::new("w", vec![Op::Creat { path: "foo".into() }]);
        let seed = KeySeed::of(&w);
        assert_ne!(cache.key(1, &seed, &info), cache.key(2, &seed, &info));

        let other = info_with(vec![("foo", entry(FileType::Regular, 5, Some(b"datum")))]);
        assert_ne!(cache.key(1, &seed, &info), cache.key(1, &seed, &other));

        let mut durable = info_with(vec![("foo", entry(FileType::Regular, 4, Some(b"data")))]);
        durable.durable_renames.push(("a".into(), "foo".into()));
        assert_ne!(cache.key(1, &seed, &info), cache.key(1, &seed, &durable));
    }

    #[test]
    fn cache_round_trips_and_resets() {
        let mut cache = TriageCache::default();
        let verdict = CheckVerdict {
            expected: "x".into(),
            ..CheckVerdict::default()
        };
        cache.record(42, &verdict);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(42).map(|v| v.expected.as_str()), Some("x"));
        assert!(cache.lookup(7).is_none());
        cache.reset();
        assert_eq!(cache.len(), 0);
        assert!(cache.lookup(42).is_none());
    }

    #[test]
    fn audit_divergence_reports_only_mismatches() {
        let clean = CheckVerdict::default();
        assert!(audit_divergence(3, &clean, &clean.clone()).is_none());
        let failed = CheckVerdict {
            write_failures: vec!["cannot create".into()],
            ..CheckVerdict::default()
        };
        let text = audit_divergence(3, &clean, &failed).unwrap();
        assert!(text.contains("crash point 3"), "{text}");
        assert!(text.contains("1 write failures"), "{text}");
    }
}
