//! Bug reports, consequences, and per-workload outcomes.

use std::fmt;
use std::time::Duration;

use b3_vfs::snapshot::SnapshotDiff;
use b3_vfs::workload::Workload;

/// The observable consequence of a crash-consistency bug, ordered by
/// severity. These mirror the consequence classes of the paper's Tables 1,
/// 2 and 5 ("corruption", "data inconsistency", "un-mountable file system",
/// broken rename atomicity, missing files/directories, lost blocks, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Consequence {
    /// Extended attributes differ from what was persisted.
    XattrInconsistent,
    /// A symlink recovered with an empty target.
    SymlinkEmpty,
    /// Allocated blocks (st_blocks) were lost.
    BlocksLost,
    /// The file size differs from the persisted size (but grew, or changed
    /// without data loss).
    WrongSize,
    /// Persisted file contents are corrupted.
    DataCorruption,
    /// Persisted data or size was lost (file recovered shorter or empty).
    DataLoss,
    /// A rename left the file visible in both the old and the new location.
    FileInBothLocations,
    /// A persisted directory is missing after recovery.
    DirectoryMissing,
    /// A persisted file is missing after recovery.
    FileMissing,
    /// A directory cannot be removed after recovery (stale entries/size).
    DirectoryUnremovable,
    /// New files cannot be created after recovery.
    CannotCreateFiles,
    /// The file system cannot be mounted at all.
    Unmountable,
    /// Application-level (see `b3_app`): recovering the same crash state
    /// twice yields different engine states — WAL replay is not idempotent
    /// (e.g. a stale `applied_seq` re-applies records on every open).
    TxnReplayNotIdempotent,
    /// Application-level: the recovered engine state is not an atomic
    /// prefix of the committed transaction history — some transaction
    /// applied partially (torn commit record, commit record durable before
    /// its data).
    TxnAtomicityBroken,
    /// Application-level: effects of an aborted (or never-committed)
    /// transaction survived recovery.
    TxnResurrection,
    /// Application-level: a transaction whose commit was acknowledged as
    /// durable is missing after recovery.
    TxnDurabilityLoss,
}

impl Consequence {
    /// Short human-readable description matching the paper's wording.
    pub fn describe(&self) -> &'static str {
        match self {
            Consequence::XattrInconsistent => "extended attributes inconsistent",
            Consequence::SymlinkEmpty => "symlink recovered empty",
            Consequence::BlocksLost => "allocated blocks lost",
            Consequence::WrongSize => "file recovers to incorrect size",
            Consequence::DataCorruption => "persisted data corrupted",
            Consequence::DataLoss => "persisted data lost",
            Consequence::FileInBothLocations => "rename persists file in both locations",
            Consequence::DirectoryMissing => "persisted directory missing",
            Consequence::FileMissing => "persisted file missing",
            Consequence::DirectoryUnremovable => "directory un-removable",
            Consequence::CannotCreateFiles => "unable to create new files",
            Consequence::Unmountable => "file system unmountable",
            Consequence::TxnReplayNotIdempotent => "WAL replay not idempotent",
            Consequence::TxnAtomicityBroken => "committed transaction applied partially",
            Consequence::TxnResurrection => "aborted transaction resurrected",
            Consequence::TxnDurabilityLoss => "committed transaction lost",
        }
    }

    /// The coarse study category used by Table 1 (corruption / data
    /// inconsistency / un-mountable), extended with the application-level
    /// bucket `b3_app`'s transaction oracle reports into.
    pub fn study_category(&self) -> &'static str {
        match self {
            Consequence::Unmountable => "un-mountable",
            Consequence::DataLoss
            | Consequence::DataCorruption
            | Consequence::WrongSize
            | Consequence::BlocksLost
            | Consequence::XattrInconsistent
            | Consequence::SymlinkEmpty => "data inconsistency",
            Consequence::TxnReplayNotIdempotent
            | Consequence::TxnAtomicityBroken
            | Consequence::TxnResurrection
            | Consequence::TxnDurabilityLoss => "application",
            _ => "corruption",
        }
    }
}

impl Consequence {
    /// Stable one-byte code for serialization (sweep checkpoints).
    pub fn code(&self) -> u8 {
        match self {
            Consequence::XattrInconsistent => 0,
            Consequence::SymlinkEmpty => 1,
            Consequence::BlocksLost => 2,
            Consequence::WrongSize => 3,
            Consequence::DataCorruption => 4,
            Consequence::DataLoss => 5,
            Consequence::FileInBothLocations => 6,
            Consequence::DirectoryMissing => 7,
            Consequence::FileMissing => 8,
            Consequence::DirectoryUnremovable => 9,
            Consequence::CannotCreateFiles => 10,
            Consequence::Unmountable => 11,
            Consequence::TxnReplayNotIdempotent => 12,
            Consequence::TxnAtomicityBroken => 13,
            Consequence::TxnResurrection => 14,
            Consequence::TxnDurabilityLoss => 15,
        }
    }

    /// Inverse of [`Consequence::code`].
    pub fn from_code(code: u8) -> Option<Consequence> {
        Some(match code {
            0 => Consequence::XattrInconsistent,
            1 => Consequence::SymlinkEmpty,
            2 => Consequence::BlocksLost,
            3 => Consequence::WrongSize,
            4 => Consequence::DataCorruption,
            5 => Consequence::DataLoss,
            6 => Consequence::FileInBothLocations,
            7 => Consequence::DirectoryMissing,
            8 => Consequence::FileMissing,
            9 => Consequence::DirectoryUnremovable,
            10 => Consequence::CannotCreateFiles,
            11 => Consequence::Unmountable,
            12 => Consequence::TxnReplayNotIdempotent,
            13 => Consequence::TxnAtomicityBroken,
            14 => Consequence::TxnResurrection,
            15 => Consequence::TxnDurabilityLoss,
            _ => return None,
        })
    }
}

impl fmt::Display for Consequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// A single crash-consistency bug report, as produced by the AutoChecker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugReport {
    /// Name of the workload that exposed the bug.
    pub workload_name: String,
    /// The workload's skeleton (core operation kinds), the grouping key used
    /// for post-processing (§5.3, Figure 5).
    pub skeleton: String,
    /// The target file system.
    pub fs_name: String,
    /// The checkpoint (persistence point) after which the crash was
    /// simulated.
    pub crash_point: u32,
    /// Primary (most severe) consequence.
    pub consequence: Consequence,
    /// Every consequence observed at this crash point (the primary one is
    /// the maximum of these).
    pub all_consequences: Vec<Consequence>,
    /// The expected state of the persisted files, human-readable.
    pub expected: String,
    /// The observed state after recovery, human-readable.
    pub actual: String,
    /// Detailed read-check differences.
    pub diffs: Vec<SnapshotDiff>,
    /// Write-check failures (un-removable directories, failed creates).
    pub write_check_failures: Vec<String>,
}

impl BugReport {
    /// The key used to group reports that are manifestations of the same
    /// underlying bug: identical skeleton and consequence (§5.3).
    pub fn group_key(&self) -> (String, Consequence) {
        (self.skeleton.clone(), self.consequence)
    }

    /// Serializes the report with the workspace codec; the inverse of
    /// [`BugReport::decode`]. Sweep checkpoints persist reports this way so
    /// a resumed sweep reproduces the uninterrupted run's `RunSummary`.
    pub fn encode(&self, enc: &mut b3_vfs::codec::Encoder) {
        enc.put_str(&self.workload_name);
        enc.put_str(&self.skeleton);
        enc.put_str(&self.fs_name);
        enc.put_u32(self.crash_point);
        enc.put_u8(self.consequence.code());
        enc.put_u64(self.all_consequences.len() as u64);
        for consequence in &self.all_consequences {
            enc.put_u8(consequence.code());
        }
        enc.put_str(&self.expected);
        enc.put_str(&self.actual);
        enc.put_u64(self.diffs.len() as u64);
        for diff in &self.diffs {
            diff.encode(enc);
        }
        enc.put_u64(self.write_check_failures.len() as u64);
        for failure in &self.write_check_failures {
            enc.put_str(failure);
        }
    }

    /// Deserializes a report produced by [`BugReport::encode`]. Every
    /// declared element count is validated against the remaining buffer
    /// before allocation, so a truncated or corrupt input (e.g. a desynced
    /// worker frame) yields an error instead of a huge allocation.
    pub fn decode(dec: &mut b3_vfs::codec::Decoder<'_>) -> b3_vfs::error::FsResult<BugReport> {
        use b3_vfs::error::FsError;
        let get_consequence = |dec: &mut b3_vfs::codec::Decoder<'_>| {
            let code = dec.get_u8()?;
            Consequence::from_code(code)
                .ok_or_else(|| FsError::Corrupted(format!("unknown consequence code {code}")))
        };
        // `min_element_bytes` is a floor on the encoded size of one element,
        // so `count * min > remaining` proves the count is bogus.
        let get_count = |dec: &mut b3_vfs::codec::Decoder<'_>, min_element_bytes: usize, what| {
            let count = dec.get_u64()? as usize;
            if count > dec.remaining() / min_element_bytes {
                return Err(FsError::Corrupted(format!(
                    "bug report declares {count} {what} but only {} bytes remain",
                    dec.remaining()
                )));
            }
            Ok(count)
        };
        let workload_name = dec.get_str()?;
        let skeleton = dec.get_str()?;
        let fs_name = dec.get_str()?;
        let crash_point = dec.get_u32()?;
        let consequence = get_consequence(dec)?;
        let count = get_count(dec, 1, "consequences")?;
        let mut all_consequences = Vec::with_capacity(count);
        for _ in 0..count {
            all_consequences.push(get_consequence(dec)?);
        }
        let expected = dec.get_str()?;
        let actual = dec.get_str()?;
        let count = get_count(dec, 9, "diffs")?;
        let mut diffs = Vec::with_capacity(count);
        for _ in 0..count {
            diffs.push(SnapshotDiff::decode(dec)?);
        }
        let count = get_count(dec, 8, "write-check failures")?;
        let mut write_check_failures = Vec::with_capacity(count);
        for _ in 0..count {
            write_check_failures.push(dec.get_str()?);
        }
        Ok(BugReport {
            workload_name,
            skeleton,
            fs_name,
            crash_point,
            consequence,
            all_consequences,
            expected,
            actual,
            diffs,
            write_check_failures,
        })
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} on {} (crash point {}): {}",
            self.workload_name, self.skeleton, self.fs_name, self.crash_point, self.consequence
        )?;
        writeln!(f, "  expected: {}", self.expected)?;
        writeln!(f, "  actual:   {}", self.actual)?;
        for diff in &self.diffs {
            writeln!(f, "  - {diff}")?;
        }
        for failure in &self.write_check_failures {
            writeln!(f, "  - write check: {failure}")?;
        }
        Ok(())
    }
}

/// Wall-clock timing of the three CrashMonkey phases (§6.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTiming {
    /// Profiling the workload.
    pub profile: Duration,
    /// Constructing crash states (replaying recorded IO up to each
    /// checkpoint; includes [`PhaseTiming::recovery`]).
    pub crash_state_construction: Duration,
    /// Recovering each constructed crash state — the part of construction
    /// spent in the file system's mount/recovery path rather than in IO
    /// replay, and the phase the [`RecoveryMode`](crate::RecoveryMode)s
    /// differ in.
    pub recovery: Duration,
    /// Consistency checking.
    pub checking: Duration,
    /// End-to-end time.
    pub total: Duration,
    /// The modeled kernel-imposed delay (mount + settle) that the real
    /// CrashMonkey pays per workload; zero unless the configuration enables
    /// modeling (see `CrashMonkeyConfig::model_kernel_delays`).
    pub modeled_kernel_delay_seconds: f64,
}

impl PhaseTiming {
    /// End-to-end latency including the modeled kernel delays, in seconds —
    /// the number to compare against the paper's 4.6 s.
    pub fn modeled_total_seconds(&self) -> f64 {
        self.total.as_secs_f64() + self.modeled_kernel_delay_seconds
    }
}

/// Resource accounting for one workload (§6.5).
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceStats {
    /// Bytes of block IO recorded while profiling.
    pub recorded_io_bytes: u64,
    /// Bytes held in copy-on-write overlays across all constructed crash
    /// states (the paper's ~20 MB average memory consumption figure).
    pub crash_state_overlay_bytes: u64,
    /// Bytes of persistent storage used by the serialized workload (the
    /// paper reports ~480 KB per workload).
    pub workload_storage_bytes: u64,
}

/// The outcome of testing one workload on one file system.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// The workload's name.
    pub workload_name: String,
    /// The workload's skeleton string.
    pub skeleton: String,
    /// The file system under test.
    pub fs_name: String,
    /// Bug reports (empty when the workload passed).
    pub bugs: Vec<BugReport>,
    /// Number of crash points *dynamically* tested (constructed, recovered,
    /// checked).
    pub checkpoints_tested: u32,
    /// Crash points covered by reusing a triage witness verdict instead of
    /// dynamic testing. Always zero unless the policy is
    /// `CrashPointPolicy::AllTriaged`; total coverage is
    /// `checkpoints_tested + checkpoints_reused`.
    pub checkpoints_reused: u32,
    /// Reused crash states that the triage audit additionally re-tested
    /// dynamically (these count toward `checkpoints_tested`, not
    /// `checkpoints_reused`).
    pub triage_audited: u32,
    /// Triage audit divergences: reused verdicts whose dynamic re-test did
    /// not match the cached witness. Non-empty output means the triage key
    /// failed to capture a checker input (or a digest collision occurred)
    /// and must be treated as a bug.
    pub triage_divergences: Vec<String>,
    /// Set when the workload could not be executed (invalid op sequence).
    pub skipped: Option<String>,
    /// Phase timings.
    pub timing: PhaseTiming,
    /// Resource accounting.
    pub resource: ResourceStats,
}

impl WorkloadOutcome {
    /// Creates an empty outcome for a workload.
    pub fn new(workload: &Workload, fs_name: &str) -> Self {
        Self::from_parts(workload.name.clone(), workload.skeleton_string(), fs_name)
    }

    /// Creates an empty outcome from raw name/skeleton strings — for
    /// workload kinds that are not syscall sequences (the `b3_app`
    /// transaction workloads).
    pub fn from_parts(workload_name: String, skeleton: String, fs_name: &str) -> Self {
        WorkloadOutcome {
            workload_name,
            skeleton,
            fs_name: fs_name.to_string(),
            bugs: Vec::new(),
            checkpoints_tested: 0,
            checkpoints_reused: 0,
            triage_audited: 0,
            triage_divergences: Vec::new(),
            skipped: None,
            timing: PhaseTiming::default(),
            resource: ResourceStats::default(),
        }
    }

    /// True if the workload ran and revealed at least one bug.
    pub fn found_bug(&self) -> bool {
        !self.bugs.is_empty()
    }

    /// The most severe consequence among this outcome's bug reports.
    pub fn worst_consequence(&self) -> Option<Consequence> {
        self.bugs.iter().map(|b| b.consequence).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consequence_ordering_puts_unmountable_on_top() {
        assert!(Consequence::Unmountable > Consequence::FileMissing);
        assert!(Consequence::FileMissing > Consequence::DataLoss);
        assert!(Consequence::DataLoss > Consequence::BlocksLost);
        assert!(Consequence::CannotCreateFiles > Consequence::DirectoryUnremovable);
    }

    #[test]
    fn study_categories_match_table1_buckets() {
        assert_eq!(Consequence::Unmountable.study_category(), "un-mountable");
        assert_eq!(Consequence::DataLoss.study_category(), "data inconsistency");
        assert_eq!(Consequence::FileMissing.study_category(), "corruption");
        assert_eq!(
            Consequence::DirectoryUnremovable.study_category(),
            "corruption"
        );
        assert_eq!(
            Consequence::TxnAtomicityBroken.study_category(),
            "application"
        );
        assert_eq!(
            Consequence::TxnDurabilityLoss.study_category(),
            "application"
        );
        // Within the application bucket, durability loss outranks the rest.
        assert!(Consequence::TxnDurabilityLoss > Consequence::TxnResurrection);
        assert!(Consequence::TxnResurrection > Consequence::TxnAtomicityBroken);
        assert!(Consequence::TxnAtomicityBroken > Consequence::TxnReplayNotIdempotent);
    }

    #[test]
    fn report_display_includes_expected_and_actual() {
        let report = BugReport {
            workload_name: "w1".into(),
            skeleton: "link-write".into(),
            fs_name: "cowfs".into(),
            crash_point: 2,
            consequence: Consequence::DataLoss,
            all_consequences: vec![Consequence::DataLoss],
            expected: "foo: 16384 bytes".into(),
            actual: "foo: 0 bytes".into(),
            diffs: vec![],
            write_check_failures: vec![],
        };
        let text = report.to_string();
        assert!(text.contains("persisted data lost"));
        assert!(text.contains("16384"));
        assert!(text.contains("crash point 2"));
        assert_eq!(report.group_key().1, Consequence::DataLoss);
    }

    #[test]
    fn bug_report_codec_round_trips() {
        let report = BugReport {
            workload_name: "seq-2-0001234".into(),
            skeleton: "rename-fsync".into(),
            fs_name: "cowfs".into(),
            crash_point: 3,
            consequence: Consequence::FileInBothLocations,
            all_consequences: vec![Consequence::FileMissing, Consequence::FileInBothLocations],
            expected: "persisted: B/foo".into(),
            actual: "A/foo resurrected".into(),
            diffs: vec![
                SnapshotDiff::Unexpected {
                    path: "A/foo".into(),
                },
                SnapshotDiff::SizeMismatch {
                    path: "B/foo".into(),
                    expected: 8192,
                    actual: 0,
                },
            ],
            write_check_failures: vec!["directory 'A' cannot be removed".into()],
        };
        let mut enc = b3_vfs::codec::Encoder::new();
        report.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = b3_vfs::codec::Decoder::new(&bytes);
        let decoded = BugReport::decode(&mut dec).unwrap();
        assert_eq!(decoded, report);
        assert!(dec.is_exhausted());

        for code in 0..=15u8 {
            assert_eq!(Consequence::from_code(code).unwrap().code(), code);
        }
        assert!(Consequence::from_code(99).is_none());
    }

    #[test]
    fn modeled_total_adds_delay() {
        let timing = PhaseTiming {
            total: Duration::from_millis(100),
            modeled_kernel_delay_seconds: 3.9,
            ..PhaseTiming::default()
        };
        assert!((timing.modeled_total_seconds() - 4.0).abs() < 1e-9);
    }
}
