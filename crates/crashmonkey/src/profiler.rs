//! Phase 1: profiling a workload.
//!
//! The profiler executes the workload on a freshly formatted file system
//! mounted on a recording wrapper device. After every persistence operation
//! it inserts a checkpoint marker into the recorded IO stream and captures:
//!
//! * the *oracle* — the complete logical state of the file system at that
//!   instant (equivalent to cleanly unmounting a copy), and
//! * the *persisted set* — for every explicitly persisted file or directory,
//!   a snapshot of the state that persistence operation guaranteed. This is
//!   the fine-grained information that lets the AutoChecker compare exactly
//!   what must survive, rather than everything that happened to be in memory.

use std::collections::BTreeMap;

use b3_block::{CowSnapshotDevice, DiskImage, IoLog, RecordingDevice};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::exec::Executor;
use b3_vfs::fs::{FsSpec, WriteMode};
use b3_vfs::metadata::{FileType, Metadata};
use b3_vfs::snapshot::{EntrySnapshot, LogicalSnapshot};
use b3_vfs::workload::{Op, Workload, WriteSpec};

use crate::config::CrashMonkeyConfig;

/// What a persistence operation guaranteed about one path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// The persisted state of the entry at the moment of its most recent
    /// explicit persistence.
    pub entry: EntrySnapshot,
    /// When true, only the entry's existence (and type / symlink target) is
    /// guaranteed — used for children of an fsynced directory that were not
    /// themselves fsynced.
    pub existence_only: bool,
}

/// Everything captured at one persistence point.
#[derive(Debug, Clone)]
pub struct CheckpointInfo {
    /// Checkpoint id in the recorded IO stream (1-based).
    pub id: u32,
    /// Index (within setup + ops) of the persistence operation.
    pub op_index: usize,
    /// The operation that created this checkpoint (for reporting).
    pub op_description: String,
    /// Expectations for every explicitly persisted path.
    pub persisted: BTreeMap<String, Expectation>,
    /// Renames (old path, new path) whose source had been explicitly
    /// persisted before the rename executed. The persisted object may
    /// legally survive a crash under either name, but never under both —
    /// which is what the rename-atomicity check verifies.
    pub persisted_renames: Vec<(String, String)>,
    /// Full logical state at this instant (the clean-unmount oracle).
    pub oracle: LogicalSnapshot,
}

/// The result of profiling one workload.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// The initial (pre-mkfs) image crash states are replayed onto.
    pub base_image: DiskImage,
    /// The recorded block IO stream, including checkpoint markers.
    pub log: IoLog,
    /// One entry per persistence point, in workload order.
    pub checkpoints: Vec<CheckpointInfo>,
    /// Set when the workload could not be executed to completion.
    pub exec_error: Option<FsError>,
}

/// The workload profiler.
pub struct Profiler<'a> {
    spec: &'a dyn FsSpec,
    config: &'a CrashMonkeyConfig,
}

impl<'a> Profiler<'a> {
    /// Creates a profiler for one file system and configuration.
    pub fn new(spec: &'a dyn FsSpec, config: &'a CrashMonkeyConfig) -> Self {
        Profiler { spec, config }
    }

    /// Profiles a workload: runs it start to finish while recording IO,
    /// inserting checkpoints, and capturing oracles and expectations.
    pub fn profile(&self, workload: &Workload) -> FsResult<ProfileResult> {
        let base_image = DiskImage::empty(self.config.device_blocks);
        let snapshot_device = CowSnapshotDevice::new(base_image.clone());
        let recording = RecordingDevice::new(Box::new(snapshot_device));
        let log_handle = recording.log_handle();

        let mut fs = self.spec.mkfs(Box::new(recording))?;
        let mut executor = Executor::new();
        let mut persisted: BTreeMap<String, Expectation> = BTreeMap::new();
        let mut persisted_renames: Vec<(String, String)> = Vec::new();
        let mut checkpoints = Vec::new();
        let mut exec_error = None;

        for (op_index, op) in workload.all_ops().enumerate() {
            if let Err(error) = executor.apply(fs.as_mut(), op) {
                exec_error = Some(error);
                break;
            }

            // A rename moves the persisted object to a new name: the old
            // path is no longer guaranteed to exist (the new one is not
            // guaranteed either, unless re-persisted), but the pair is
            // remembered for the rename-atomicity check.
            if let Op::Rename { from, to } = op {
                let from = b3_vfs::path::normalize(from);
                let to = b3_vfs::path::normalize(to);
                let moved: Vec<String> = persisted
                    .keys()
                    .filter(|p| p.as_str() == from || b3_vfs::path::is_ancestor(&from, p))
                    .cloned()
                    .collect();
                if moved.iter().any(|p| p == &from) {
                    persisted_renames.push((from.clone(), to.clone()));
                }
                for path in moved {
                    persisted.remove(&path);
                }
            }

            let is_checkpoint = op.is_persistence_point()
                || (self.config.direct_write_is_persistence_point && is_direct_write(op));
            if !is_checkpoint {
                continue;
            }

            let oracle = LogicalSnapshot::capture(fs.as_ref())?;
            update_expectations(&mut persisted, &oracle, op, fs.as_ref());
            let id = log_handle.checkpoint();
            checkpoints.push(CheckpointInfo {
                id,
                op_index,
                op_description: op.to_string(),
                persisted: persisted.clone(),
                persisted_renames: persisted_renames.clone(),
                oracle,
            });
        }

        Ok(ProfileResult {
            base_image,
            log: log_handle.snapshot(),
            checkpoints,
            exec_error,
        })
    }
}

fn is_direct_write(op: &Op) -> bool {
    matches!(
        op,
        Op::Write {
            mode: WriteMode::Direct,
            ..
        }
    )
}

/// Updates the persisted-set expectations after the persistence operation
/// `op` completed, using the oracle captured at that instant.
fn update_expectations(
    persisted: &mut BTreeMap<String, Expectation>,
    oracle: &LogicalSnapshot,
    op: &Op,
    fs: &dyn b3_vfs::fs::FileSystem,
) {
    match op {
        Op::Sync => {
            // A global sync persists everything that exists right now.
            for (path, entry) in oracle.iter() {
                persisted.insert(
                    path.clone(),
                    Expectation {
                        entry: entry.clone(),
                        existence_only: false,
                    },
                );
            }
            // Paths persisted earlier but no longer present were legitimately
            // removed and are no longer guaranteed.
            persisted.retain(|path, _| oracle.contains(path));
        }
        Op::Fsync { path } | Op::Fdatasync { path } | Op::Msync { path, .. } => {
            let path = b3_vfs::path::normalize(path);
            let Some(entry) = oracle.get(&path) else {
                return;
            };
            persisted.insert(
                path.clone(),
                Expectation {
                    entry: entry.clone(),
                    existence_only: false,
                },
            );
            // fsync of a directory also guarantees its current entries are
            // reachable after a crash (Linux file systems provide this
            // beyond-POSIX guarantee, §5.1).
            if entry.file_type == FileType::Directory {
                if let Some(children) = &entry.children {
                    for child in children {
                        let child_path = b3_vfs::path::join(&path, child);
                        if let Some(child_entry) = oracle.get(&child_path) {
                            persisted.entry(child_path).or_insert_with(|| Expectation {
                                entry: child_entry.clone(),
                                existence_only: true,
                            });
                        }
                    }
                }
            } else if entry.file_type == FileType::Regular
                && fs.guarantees().fsync_persists_all_names
            {
                // fsync of a file persists all of its hard-link names, so
                // every other path referring to the same inode must also
                // survive (this is what the paper's new bugs 5 and 7 break).
                if let Ok(meta) = fs.metadata(&path) {
                    for (other_path, other_entry) in oracle.iter() {
                        if other_path == &path || other_entry.file_type != FileType::Regular {
                            continue;
                        }
                        if fs
                            .metadata(other_path)
                            .map(|m| m.ino == meta.ino)
                            .unwrap_or(false)
                        {
                            persisted
                                .entry(other_path.clone())
                                .or_insert_with(|| Expectation {
                                    entry: other_entry.clone(),
                                    existence_only: true,
                                });
                        }
                    }
                }
            }
        }
        Op::Write {
            path,
            mode: WriteMode::Direct,
            spec,
        } => {
            // A direct write makes its own data durable. If the file was
            // already durable (persisted earlier), extend that expectation
            // with the directly-written range; otherwise the file's
            // existence is still not guaranteed and nothing is added.
            let path = b3_vfs::path::normalize(path);
            if let Some(expectation) = persisted.get_mut(&path) {
                if let (Some(entry), WriteSpec::Range { offset, len }) = (oracle.get(&path), spec) {
                    apply_direct_write_expectation(expectation, entry, *offset, *len);
                }
            }
        }
        _ => {}
    }
}

/// Grows a prior expectation to cover a direct write's byte range: the data
/// in that range, the size needed to read it back, and the corresponding
/// allocation are now durable.
fn apply_direct_write_expectation(
    expectation: &mut Expectation,
    oracle_entry: &EntrySnapshot,
    offset: u64,
    len: u64,
) {
    if expectation.entry.file_type != FileType::Regular {
        return;
    }
    let end = offset + len;
    let mut data = expectation.entry.data.clone().unwrap_or_default();
    if (data.len() as u64) < end {
        data.resize(end as usize, 0);
    }
    if let Some(oracle_data) = &oracle_entry.data {
        let upto = (end as usize).min(oracle_data.len());
        let start = (offset as usize).min(upto);
        data[start..upto].copy_from_slice(&oracle_data[start..upto]);
    }
    expectation.entry.size = expectation.entry.size.max(end);
    expectation.entry.blocks = expectation
        .entry
        .blocks
        .max(Metadata::sectors_for(end.div_ceil(4096) * 4096));
    expectation.entry.data = Some(data);
    expectation.existence_only = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_cow::CowFsSpec;
    use b3_vfs::workload::Op;

    fn profile(workload: &Workload) -> ProfileResult {
        let spec = CowFsSpec::patched();
        let config = CrashMonkeyConfig::small();
        Profiler::new(&spec, &config).profile(workload).unwrap()
    }

    #[test]
    fn checkpoints_match_persistence_points() {
        let workload = Workload::with_setup(
            "p",
            vec![Op::Mkdir { path: "A".into() }],
            vec![
                Op::Creat {
                    path: "A/foo".into(),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
                Op::Creat {
                    path: "A/bar".into(),
                },
                Op::Sync,
            ],
        );
        let result = profile(&workload);
        assert!(result.exec_error.is_none());
        assert_eq!(result.checkpoints.len(), 2);
        assert_eq!(result.log.num_checkpoints(), 2);
        assert_eq!(result.checkpoints[0].op_description, "fsync A/foo");
        assert_eq!(result.checkpoints[1].op_description, "sync");
    }

    #[test]
    fn fsync_adds_full_expectation_for_the_file() {
        let workload = Workload::with_setup(
            "p",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![Op::Fsync {
                path: "A/foo".into(),
            }],
        );
        let result = profile(&workload);
        let cp = &result.checkpoints[0];
        let exp = cp.persisted.get("A/foo").expect("A/foo persisted");
        assert!(!exp.existence_only);
        assert_eq!(exp.entry.file_type, FileType::Regular);
        assert!(
            !cp.persisted.contains_key("A"),
            "parent not explicitly persisted"
        );
    }

    #[test]
    fn dir_fsync_adds_existence_expectations_for_children() {
        let workload = Workload::new(
            "p",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
                Op::Creat {
                    path: "A/bar".into(),
                },
                Op::Fsync { path: "A".into() },
            ],
        );
        let result = profile(&workload);
        let cp = &result.checkpoints[0];
        assert!(!cp.persisted["A"].existence_only);
        assert!(cp.persisted["A/foo"].existence_only);
        assert!(cp.persisted["A/bar"].existence_only);
    }

    #[test]
    fn sync_persists_everything_and_forgets_removed_paths() {
        let workload = Workload::new(
            "p",
            vec![
                Op::Creat {
                    path: "keep".into(),
                },
                Op::Creat {
                    path: "gone".into(),
                },
                Op::Sync,
                Op::Unlink {
                    path: "gone".into(),
                },
                Op::Sync,
            ],
        );
        let result = profile(&workload);
        assert_eq!(result.checkpoints.len(), 2);
        assert!(result.checkpoints[0].persisted.contains_key("gone"));
        assert!(!result.checkpoints[1].persisted.contains_key("gone"));
        assert!(result.checkpoints[1].persisted.contains_key("keep"));
    }

    #[test]
    fn exec_errors_are_captured_not_propagated() {
        let workload = Workload::new(
            "bad",
            vec![
                Op::Unlink {
                    path: "missing".into(),
                },
                Op::Sync,
            ],
        );
        let result = profile(&workload);
        assert!(result.exec_error.is_some());
        assert!(result.checkpoints.is_empty());
    }

    #[test]
    fn recorded_log_contains_write_io() {
        let workload = Workload::new("io", vec![Op::Creat { path: "foo".into() }, Op::Sync]);
        let result = profile(&workload);
        assert!(result.log.recorded_bytes() > 0);
        assert!(result.log.len() > 1);
    }
}
