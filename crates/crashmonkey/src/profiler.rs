//! Phase 1: profiling a workload.
//!
//! The profiler executes the workload on a freshly formatted file system
//! mounted on a recording wrapper device. After every persistence operation
//! it inserts a checkpoint marker into the recorded IO stream and captures:
//!
//! * the *oracle* — the complete logical state of the file system at that
//!   instant (equivalent to cleanly unmounting a copy), and
//! * the *persisted set* — for every explicitly persisted file or directory,
//!   a snapshot of the state that persistence operation guaranteed. This is
//!   the fine-grained information that lets the AutoChecker compare exactly
//!   what must survive, rather than everything that happened to be in memory.
//!
//! The oracle is maintained *incrementally*: between adjacent checkpoints
//! only the paths the intervening operations touched (plus their hard-link
//! aliases and parent directories) are re-captured, instead of re-reading
//! every file in the file system at every persistence point — the
//! checker-hot-path item of the ROADMAP. Debug builds assert after every
//! checkpoint that the incremental oracle is byte-identical to a full
//! capture, so the whole test suite doubles as an equivalence proof.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use b3_block::{CowSnapshotDevice, DiskImage, IoLog, RecordingDevice};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::exec::Executor;
use b3_vfs::fs::{FileSystem, FsSpec, WriteMode};
use b3_vfs::metadata::{FileType, Metadata};
use b3_vfs::path::{is_ancestor, normalize, parent};
use b3_vfs::snapshot::{EntryInterner, EntrySnapshot, LogicalSnapshot};
use b3_vfs::workload::{Op, Workload, WriteSpec};

use crate::config::CrashMonkeyConfig;

/// What a persistence operation guaranteed about one path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// The persisted state of the entry at the moment of its most recent
    /// explicit persistence. Shared with the oracle snapshot it was captured
    /// from, so recording an expectation (and cloning the persisted set per
    /// checkpoint) never copies file data.
    pub entry: Arc<EntrySnapshot>,
    /// When true, only the entry's existence (and type / symlink target) is
    /// guaranteed — used for children of an fsynced directory that were not
    /// themselves fsynced.
    pub existence_only: bool,
}

/// Everything captured at one persistence point.
#[derive(Debug, Clone)]
pub struct CheckpointInfo {
    /// Checkpoint id in the recorded IO stream (1-based).
    pub id: u32,
    /// Index (within setup + ops) of the persistence operation.
    pub op_index: usize,
    /// The operation that created this checkpoint (for reporting).
    pub op_description: String,
    /// Expectations for every explicitly persisted path.
    pub persisted: BTreeMap<String, Expectation>,
    /// Renames (old path, new path) whose source had been explicitly
    /// persisted before the rename executed. The persisted object may
    /// legally survive a crash under either name, but never under both —
    /// which is what the rename-atomicity check verifies.
    pub persisted_renames: Vec<(String, String)>,
    /// Renames (old path, new path) that are themselves *durable* at this
    /// checkpoint: the renamed inode's new name was explicitly fsynced (or a
    /// global sync ran) after the rename executed. After such a checkpoint
    /// the old name must not exist at all — not even as a different inode —
    /// which is what the op-order-aware durable-rename check verifies.
    pub durable_renames: Vec<(String, String)>,
    /// Full logical state at this instant (the clean-unmount oracle), shared
    /// rather than copied per checkpoint.
    pub oracle: Arc<LogicalSnapshot>,
}

/// The result of profiling one workload.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// The initial (pre-mkfs) image crash states are replayed onto.
    pub base_image: DiskImage,
    /// The recorded block IO stream, including checkpoint markers.
    pub log: IoLog,
    /// One entry per persistence point, in workload order.
    pub checkpoints: Vec<CheckpointInfo>,
    /// Set when the workload could not be executed to completion.
    pub exec_error: Option<FsError>,
}

/// Incrementally maintained oracle state: the current logical snapshot plus
/// the bookkeeping needed to refresh only what changed since the previous
/// checkpoint.
struct OracleTracker {
    snapshot: LogicalSnapshot,
    /// Inode number of every captured path at its last refresh; lets a write
    /// through one hard link invalidate the aliases that share the inode.
    /// Only maintained once a `link` has executed — without hard links no
    /// two paths share an inode and the bookkeeping is pure overhead.
    inos: BTreeMap<String, u64>,
    /// Paths whose single entry must be re-captured.
    dirty_entries: BTreeSet<String>,
    /// Paths whose whole subtree must be re-captured (rename sources and
    /// destinations).
    dirty_subtrees: BTreeSet<String>,
    /// True once any `link` executed (enables alias tracking).
    saw_link: bool,
    /// False until the first full capture.
    initialized: bool,
    /// Cross-workload content-addressed pool for oracle entries: freshly
    /// captured entries are exchanged for the canonical `Arc` of any
    /// content-equal entry seen before (adjacent generated workloads have
    /// nearly identical oracles). `None` disables the exchange.
    interner: Option<Arc<EntryInterner>>,
}

impl OracleTracker {
    fn new(interner: Option<Arc<EntryInterner>>) -> Self {
        OracleTracker {
            snapshot: LogicalSnapshot::default(),
            inos: BTreeMap::new(),
            dirty_entries: BTreeSet::new(),
            dirty_subtrees: BTreeSet::new(),
            saw_link: false,
            initialized: false,
            interner,
        }
    }

    fn mark_entry(&mut self, path: &str) {
        self.dirty_entries.insert(normalize(path));
    }

    fn mark_with_parent(&mut self, path: &str) {
        let path = normalize(path);
        if let Ok(parent_path) = parent(&path) {
            self.dirty_entries.insert(parent_path);
        }
        self.dirty_entries.insert(path);
    }

    /// Marks exactly what `op` may have changed as dirty: the entry itself
    /// for content operations, plus the parent directory for namespace
    /// operations, plus — for renames — the full source and destination
    /// subtrees. Persistence operations change no logical state and mark
    /// nothing.
    fn note_op(&mut self, op: &Op) {
        match op {
            Op::Creat { path }
            | Op::Mkdir { path }
            | Op::Mkfifo { path }
            | Op::Unlink { path }
            | Op::Remove { path }
            | Op::Rmdir { path } => self.mark_with_parent(path),
            Op::Truncate { path, .. }
            | Op::Falloc { path, .. }
            | Op::SetXattr { path, .. }
            | Op::RemoveXattr { path, .. }
            | Op::Write { path, .. }
            | Op::Mmap { path, .. } => self.mark_entry(path),
            Op::Symlink { linkpath, .. } => self.mark_with_parent(linkpath),
            Op::Link { existing, new } => {
                self.saw_link = true;
                self.mark_entry(existing);
                self.mark_with_parent(new);
            }
            Op::Rename { from, to } => {
                self.mark_with_parent(from);
                self.mark_with_parent(to);
                self.dirty_subtrees.insert(normalize(from));
                self.dirty_subtrees.insert(normalize(to));
            }
            Op::Fsync { .. } | Op::Fdatasync { .. } | Op::Msync { .. } | Op::Sync => {}
        }
    }

    /// Brings the snapshot up to date with `fs` and returns it as a shared
    /// oracle.
    fn checkpoint(&mut self, fs: &dyn FileSystem) -> FsResult<Arc<LogicalSnapshot>> {
        if !self.initialized {
            self.snapshot = LogicalSnapshot::capture(fs)?;
            if self.saw_link {
                self.rebuild_inos(fs);
            }
            self.initialized = true;
            if let Some(interner) = &self.interner {
                self.snapshot.intern_all(interner);
            }
        } else if !self.dirty_entries.is_empty() || !self.dirty_subtrees.is_empty() {
            self.refresh(fs)?;
            self.intern_refreshed();
        }
        self.dirty_entries.clear();
        self.dirty_subtrees.clear();

        #[cfg(debug_assertions)]
        {
            let full = LogicalSnapshot::capture(fs)?;
            debug_assert!(
                self.snapshot == full,
                "incremental oracle diverged from full capture:\n{:?}",
                full.diff_all(&self.snapshot)
            );
        }

        Ok(Arc::new(self.snapshot.clone()))
    }

    fn rebuild_inos(&mut self, fs: &dyn FileSystem) {
        self.inos.clear();
        for (path, _) in self.snapshot.iter() {
            if let Ok(meta) = fs.metadata(path) {
                self.inos.insert(path.clone(), meta.ino);
            }
        }
    }

    fn refresh(&mut self, fs: &dyn FileSystem) -> FsResult<()> {
        // Hard-link alias expansion: any captured path sharing an inode with
        // a dirty path reflects the same data/nlink change and must be
        // refreshed too (its old inode number is authoritative — a dirty
        // path that was removed still invalidates its aliases). Without hard
        // links no inode has two names, so the scan is skipped entirely.
        if self.saw_link {
            if self.inos.is_empty() {
                // The first link since initialization: aliases could only
                // have been created by ops that are themselves dirty, so a
                // map built from the (stale) snapshot plus the dirty marks
                // is complete.
                self.rebuild_inos(fs);
            }
            let mut dirty_inos: BTreeSet<u64> = BTreeSet::new();
            for path in self.dirty_entries.iter().chain(self.dirty_subtrees.iter()) {
                if let Some(ino) = self.inos.get(path) {
                    dirty_inos.insert(*ino);
                }
                if let Ok(meta) = fs.metadata(path) {
                    dirty_inos.insert(meta.ino);
                }
            }
            for (path, ino) in &self.inos {
                if dirty_inos.contains(ino) {
                    self.dirty_entries.insert(path.clone());
                }
            }
        }

        // Subtrees first (they remove stale descendants wholesale), then
        // individual entries.
        if !self.dirty_subtrees.is_empty() {
            let subtrees: Vec<String> = self.dirty_subtrees.iter().cloned().collect();
            for root in &subtrees {
                self.snapshot.refresh_subtree(fs, root)?;
                if self.saw_link {
                    self.inos.retain(|p, _| p != root && !is_ancestor(root, p));
                    let captured: Vec<String> = self
                        .snapshot
                        .iter()
                        .map(|(p, _)| p.clone())
                        .filter(|p| p == root || is_ancestor(root, p))
                        .collect();
                    for path in captured {
                        if let Ok(meta) = fs.metadata(&path) {
                            self.inos.insert(path, meta.ino);
                        }
                    }
                }
            }
        }
        let entries: Vec<String> = self.dirty_entries.iter().cloned().collect();
        for path in entries {
            self.snapshot.refresh_entry(fs, &path)?;
            if self.saw_link {
                match fs.metadata(&path) {
                    Ok(meta) => {
                        self.inos.insert(path, meta.ino);
                    }
                    Err(_) => {
                        self.inos.remove(&path);
                    }
                }
            }
        }
        Ok(())
    }

    /// Exchanges every entry [`refresh`](Self::refresh) just re-captured for
    /// its canonical interned `Arc`. Only refreshed paths are touched — the
    /// rest of the snapshot still holds interned `Arc`s from earlier
    /// checkpoints (or the initial full capture).
    fn intern_refreshed(&mut self) {
        let Some(interner) = &self.interner else {
            return;
        };
        // `refresh` adds hard-link aliases to `dirty_entries` as it runs, so
        // after it returns the set covers every individually refreshed path.
        for path in &self.dirty_entries {
            self.snapshot.intern_entry(path, interner);
        }
        if !self.dirty_subtrees.is_empty() {
            let subtree_paths: Vec<String> = self
                .snapshot
                .iter()
                .map(|(p, _)| p.clone())
                .filter(|p| {
                    self.dirty_subtrees
                        .iter()
                        .any(|root| p == root || is_ancestor(root, p))
                })
                .collect();
            for path in subtree_paths {
                self.snapshot.intern_entry(&path, interner);
            }
        }
    }
}

/// Formats a fresh file system of `spec` once and freezes the device into
/// an immutable image. Profiling mounts copy-on-write snapshots of this
/// image instead of re-running mkfs for every workload — mkfs output is a
/// pure function of the spec and device size, so one format serves millions
/// of workloads.
pub fn formatted_base_image(spec: &dyn FsSpec, config: &CrashMonkeyConfig) -> FsResult<DiskImage> {
    let device = CowSnapshotDevice::new(DiskImage::empty(config.device_blocks));
    let fs = spec.mkfs(Box::new(device))?;
    let device = fs.unmount()?;
    device.freeze_image().ok_or_else(|| {
        FsError::Corrupted("mkfs device does not support freezing into an image".into())
    })
}

/// The workload profiler.
pub struct Profiler<'a> {
    spec: &'a dyn FsSpec,
    config: &'a CrashMonkeyConfig,
    interner: Option<Arc<EntryInterner>>,
}

impl<'a> Profiler<'a> {
    /// Creates a profiler for one file system and configuration.
    pub fn new(spec: &'a dyn FsSpec, config: &'a CrashMonkeyConfig) -> Self {
        Profiler {
            spec,
            config,
            interner: None,
        }
    }

    /// Creates a profiler whose oracle/expectation entries are interned in
    /// `interner`, deduplicating content-equal entries across workloads
    /// (share one interner between many profilers — e.g. across a sweep's
    /// worker threads — to pool their oracles).
    pub fn with_interner(
        spec: &'a dyn FsSpec,
        config: &'a CrashMonkeyConfig,
        interner: Arc<EntryInterner>,
    ) -> Self {
        Profiler {
            spec,
            config,
            interner: Some(interner),
        }
    }

    /// Profiles a workload on a freshly formatted file system: formats,
    /// then delegates to [`Profiler::profile_on`]. Callers testing many
    /// workloads should format once with [`formatted_base_image`] and reuse
    /// it (as [`crate::CrashMonkey`] does).
    pub fn profile(&self, workload: &Workload) -> FsResult<ProfileResult> {
        let base_image = formatted_base_image(self.spec, self.config)?;
        self.profile_on(base_image, workload)
    }

    /// Profiles a workload: mounts a snapshot of the pre-formatted
    /// `base_image` on a recording wrapper, runs the workload start to
    /// finish while recording IO, inserting checkpoints, and capturing
    /// oracles and expectations.
    pub fn profile_on(
        &self,
        base_image: DiskImage,
        workload: &Workload,
    ) -> FsResult<ProfileResult> {
        let snapshot_device = CowSnapshotDevice::new(base_image.clone());
        let recording = RecordingDevice::new(Box::new(snapshot_device));
        let log_handle = recording.log_handle();

        let mut fs = self.spec.mount(Box::new(recording))?;
        let mut executor = Executor::new();
        let mut oracle_tracker = OracleTracker::new(self.interner.clone());
        let mut persisted: BTreeMap<String, Expectation> = BTreeMap::new();
        let mut persisted_renames: Vec<(String, String)> = Vec::new();
        // All renames executed so far: (old path, new path, moved inode).
        let mut renames_seen: Vec<(String, String, u64)> = Vec::new();
        let mut durable_renames: Vec<(String, String)> = Vec::new();
        let mut checkpoints = Vec::new();
        let mut exec_error = None;

        for (op_index, op) in workload.all_ops().enumerate() {
            if let Err(error) = executor.apply(fs.as_mut(), op) {
                exec_error = Some(error);
                break;
            }
            oracle_tracker.note_op(op);

            // A rename moves the persisted object to a new name: the old
            // path is no longer guaranteed to exist (the new one is not
            // guaranteed either, unless re-persisted), but the pair is
            // remembered for the rename-atomicity check.
            if let Op::Rename { from, to } = op {
                let from = normalize(from);
                let to = normalize(to);
                if let Ok(meta) = fs.metadata(&to) {
                    renames_seen.push((from.clone(), to.clone(), meta.ino));
                }
                let moved: Vec<String> = persisted
                    .keys()
                    .filter(|p| p.as_str() == from || is_ancestor(&from, p))
                    .cloned()
                    .collect();
                if moved.iter().any(|p| p == &from) {
                    persisted_renames.push((from.clone(), to.clone()));
                }
                for path in moved {
                    persisted.remove(&path);
                }
            }

            // Op-order-aware durability of renames: an fsync of exactly the
            // renamed inode's new name — or a global sync — executed after
            // the rename makes the rename itself durable. The inode check
            // keeps a later `creat` at the new name from counting.
            match op {
                Op::Fsync { path } => {
                    let path = normalize(path);
                    if let Ok(meta) = fs.metadata(&path) {
                        for (from, to, ino) in &renames_seen {
                            if *to == path && *ino == meta.ino {
                                push_unique(&mut durable_renames, (from.clone(), to.clone()));
                            }
                        }
                    }
                }
                Op::Sync => {
                    for (from, to, _) in &renames_seen {
                        push_unique(&mut durable_renames, (from.clone(), to.clone()));
                    }
                }
                _ => {}
            }

            let is_checkpoint = op.is_persistence_point()
                || (self.config.direct_write_is_persistence_point && is_direct_write(op));
            if !is_checkpoint {
                continue;
            }

            let oracle = oracle_tracker.checkpoint(fs.as_ref())?;
            update_expectations(&mut persisted, &oracle, op, fs.as_ref());
            let id = log_handle.checkpoint();
            checkpoints.push(CheckpointInfo {
                id,
                op_index,
                op_description: op.to_string(),
                persisted: persisted.clone(),
                persisted_renames: persisted_renames.clone(),
                durable_renames: durable_renames.clone(),
                oracle,
            });
        }

        Ok(ProfileResult {
            base_image,
            log: log_handle.snapshot(),
            checkpoints,
            exec_error,
        })
    }
}

fn push_unique(list: &mut Vec<(String, String)>, pair: (String, String)) {
    if !list.contains(&pair) {
        list.push(pair);
    }
}

fn is_direct_write(op: &Op) -> bool {
    matches!(
        op,
        Op::Write {
            mode: WriteMode::Direct,
            ..
        }
    )
}

/// Updates the persisted-set expectations after the persistence operation
/// `op` completed, using the oracle captured at that instant.
fn update_expectations(
    persisted: &mut BTreeMap<String, Expectation>,
    oracle: &LogicalSnapshot,
    op: &Op,
    fs: &dyn FileSystem,
) {
    match op {
        Op::Sync => {
            // A global sync persists everything that exists right now.
            for (path, entry) in oracle.iter_shared() {
                persisted.insert(
                    path.clone(),
                    Expectation {
                        entry: Arc::clone(entry),
                        existence_only: false,
                    },
                );
            }
            // Paths persisted earlier but no longer present were legitimately
            // removed and are no longer guaranteed.
            persisted.retain(|path, _| oracle.contains(path));
        }
        Op::Fsync { path } | Op::Fdatasync { path } | Op::Msync { path, .. } => {
            let path = normalize(path);
            let Some(entry) = oracle.get_shared(&path) else {
                return;
            };
            persisted.insert(
                path.clone(),
                Expectation {
                    entry: Arc::clone(&entry),
                    existence_only: false,
                },
            );
            // fsync of a directory also guarantees its current entries are
            // reachable after a crash (Linux file systems provide this
            // beyond-POSIX guarantee, §5.1).
            if entry.file_type == FileType::Directory {
                if let Some(children) = &entry.children {
                    for child in children {
                        let child_path = b3_vfs::path::join(&path, child);
                        if let Some(child_entry) = oracle.get_shared(&child_path) {
                            persisted.entry(child_path).or_insert_with(|| Expectation {
                                entry: child_entry,
                                existence_only: true,
                            });
                        }
                    }
                }
            } else if entry.file_type == FileType::Regular
                && fs.guarantees().fsync_persists_all_names
            {
                // fsync of a file persists all of its hard-link names, so
                // every other path referring to the same inode must also
                // survive (this is what the paper's new bugs 5 and 7 break).
                if let Ok(meta) = fs.metadata(&path) {
                    for (other_path, other_entry) in oracle.iter_shared() {
                        if other_path == &path || other_entry.file_type != FileType::Regular {
                            continue;
                        }
                        if fs.metadata(other_path).is_ok_and(|m| m.ino == meta.ino) {
                            persisted
                                .entry(other_path.clone())
                                .or_insert_with(|| Expectation {
                                    entry: Arc::clone(other_entry),
                                    existence_only: true,
                                });
                        }
                    }
                }
            }
        }
        Op::Write {
            path,
            mode: WriteMode::Direct,
            spec,
        } => {
            // A direct write makes its own data durable. If the file was
            // already durable (persisted earlier), extend that expectation
            // with the directly-written range; otherwise the file's
            // existence is still not guaranteed and nothing is added.
            let path = normalize(path);
            if let Some(expectation) = persisted.get_mut(&path) {
                if let (Some(entry), WriteSpec::Range { offset, len }) = (oracle.get(&path), spec) {
                    apply_direct_write_expectation(expectation, entry, *offset, *len);
                }
            }
        }
        _ => {}
    }
}

/// Grows a prior expectation to cover a direct write's byte range: the data
/// in that range, the size needed to read it back, and the corresponding
/// allocation are now durable.
fn apply_direct_write_expectation(
    expectation: &mut Expectation,
    oracle_entry: &EntrySnapshot,
    offset: u64,
    len: u64,
) {
    if expectation.entry.file_type != FileType::Regular {
        return;
    }
    let entry = Arc::make_mut(&mut expectation.entry);
    let end = offset + len;
    let mut data = entry.data.clone().unwrap_or_default();
    if (data.len() as u64) < end {
        data.resize(end as usize, 0);
    }
    if let Some(oracle_data) = &oracle_entry.data {
        let upto = (end as usize).min(oracle_data.len());
        let start = (offset as usize).min(upto);
        data[start..upto].copy_from_slice(&oracle_data[start..upto]);
    }
    entry.size = entry.size.max(end);
    entry.blocks = entry
        .blocks
        .max(Metadata::sectors_for(end.div_ceil(4096) * 4096));
    entry.data = Some(data);
    expectation.existence_only = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_fs_cow::CowFsSpec;
    use b3_vfs::workload::Op;

    fn profile(workload: &Workload) -> ProfileResult {
        let spec = CowFsSpec::patched();
        let config = CrashMonkeyConfig::small();
        Profiler::new(&spec, &config).profile(workload).unwrap()
    }

    #[test]
    fn checkpoints_match_persistence_points() {
        let workload = Workload::with_setup(
            "p",
            vec![Op::Mkdir { path: "A".into() }],
            vec![
                Op::Creat {
                    path: "A/foo".into(),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
                Op::Creat {
                    path: "A/bar".into(),
                },
                Op::Sync,
            ],
        );
        let result = profile(&workload);
        assert!(result.exec_error.is_none());
        assert_eq!(result.checkpoints.len(), 2);
        assert_eq!(result.log.num_checkpoints(), 2);
        assert_eq!(result.checkpoints[0].op_description, "fsync A/foo");
        assert_eq!(result.checkpoints[1].op_description, "sync");
    }

    #[test]
    fn fsync_adds_full_expectation_for_the_file() {
        let workload = Workload::with_setup(
            "p",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![Op::Fsync {
                path: "A/foo".into(),
            }],
        );
        let result = profile(&workload);
        let cp = &result.checkpoints[0];
        let exp = cp.persisted.get("A/foo").expect("A/foo persisted");
        assert!(!exp.existence_only);
        assert_eq!(exp.entry.file_type, FileType::Regular);
        assert!(
            !cp.persisted.contains_key("A"),
            "parent not explicitly persisted"
        );
    }

    #[test]
    fn dir_fsync_adds_existence_expectations_for_children() {
        let workload = Workload::new(
            "p",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
                Op::Creat {
                    path: "A/bar".into(),
                },
                Op::Fsync { path: "A".into() },
            ],
        );
        let result = profile(&workload);
        let cp = &result.checkpoints[0];
        assert!(!cp.persisted["A"].existence_only);
        assert!(cp.persisted["A/foo"].existence_only);
        assert!(cp.persisted["A/bar"].existence_only);
    }

    #[test]
    fn sync_persists_everything_and_forgets_removed_paths() {
        let workload = Workload::new(
            "p",
            vec![
                Op::Creat {
                    path: "keep".into(),
                },
                Op::Creat {
                    path: "gone".into(),
                },
                Op::Sync,
                Op::Unlink {
                    path: "gone".into(),
                },
                Op::Sync,
            ],
        );
        let result = profile(&workload);
        assert_eq!(result.checkpoints.len(), 2);
        assert!(result.checkpoints[0].persisted.contains_key("gone"));
        assert!(!result.checkpoints[1].persisted.contains_key("gone"));
        assert!(result.checkpoints[1].persisted.contains_key("keep"));
    }

    #[test]
    fn exec_errors_are_captured_not_propagated() {
        let workload = Workload::new(
            "bad",
            vec![
                Op::Unlink {
                    path: "missing".into(),
                },
                Op::Sync,
            ],
        );
        let result = profile(&workload);
        assert!(result.exec_error.is_some());
        assert!(result.checkpoints.is_empty());
    }

    #[test]
    fn recorded_log_contains_write_io() {
        let workload = Workload::new("io", vec![Op::Creat { path: "foo".into() }, Op::Sync]);
        let result = profile(&workload);
        assert!(result.log.recorded_bytes() > 0);
        assert!(result.log.len() > 1);
    }

    /// The incremental oracle must match a full capture at every checkpoint
    /// for workloads that stress the dirty-path machinery: hard-link aliases
    /// written through one name, subtree renames, and removals. (Debug
    /// builds additionally assert this inside the profiler for every
    /// profiled workload in the whole test suite.)
    #[test]
    fn incremental_oracle_matches_full_capture_for_aliases_and_renames() {
        let workload = Workload::with_setup(
            "aliases",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Mkdir { path: "B".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Link {
                    existing: "A/foo".into(),
                    new: "B/alias".into(),
                },
                Op::Sync,
                Op::Write {
                    path: "B/alias".into(),
                    mode: WriteMode::Buffered,
                    spec: WriteSpec::range(0, 8192),
                },
                Op::Fsync {
                    path: "A/foo".into(),
                },
                Op::Rename {
                    from: "A".into(),
                    to: "C".into(),
                },
                Op::Sync,
                Op::Unlink {
                    path: "B/alias".into(),
                },
                Op::Sync,
            ],
        );
        let result = profile(&workload);
        assert!(result.exec_error.is_none());
        assert_eq!(result.checkpoints.len(), 4);
        // After the hard-link write, the alias expansion must have refreshed
        // the other name too.
        let cp = &result.checkpoints[1];
        assert_eq!(cp.oracle.get("A/foo").unwrap().size, 8192);
        assert_eq!(cp.oracle.get("B/alias").unwrap().size, 8192);
        // After the directory rename, old paths are gone and new ones exist.
        let cp = &result.checkpoints[2];
        assert!(cp.oracle.get("A").is_none());
        assert!(cp.oracle.get("A/foo").is_none());
        assert_eq!(cp.oracle.get("C/foo").unwrap().size, 8192);
        // After the unlink, the alias is gone and nlink dropped.
        let cp = &result.checkpoints[3];
        assert!(cp.oracle.get("B/alias").is_none());
        assert_eq!(cp.oracle.get("C/foo").unwrap().nlink, 1);
    }

    #[test]
    fn durable_renames_require_fsync_of_the_renamed_inode() {
        let workload = Workload::with_setup(
            "durable",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Sync,
                Op::Rename {
                    from: "A/foo".into(),
                    to: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/bar".into(),
                },
            ],
        );
        let result = profile(&workload);
        let cp = result.checkpoints.last().unwrap();
        assert_eq!(
            cp.durable_renames,
            vec![("A/foo".to_string(), "A/bar".to_string())]
        );
        // The first checkpoint (the sync before the rename) must not list
        // the rename as durable.
        assert!(result.checkpoints[0].durable_renames.is_empty());
    }

    #[test]
    fn fsync_of_a_recreated_name_is_not_a_durable_rename() {
        let workload = Workload::with_setup(
            "recreated",
            vec![
                Op::Mkdir { path: "A".into() },
                Op::Creat {
                    path: "A/foo".into(),
                },
            ],
            vec![
                Op::Sync,
                Op::Rename {
                    from: "A/foo".into(),
                    to: "A/bar".into(),
                },
                Op::Unlink {
                    path: "A/bar".into(),
                },
                Op::Creat {
                    path: "A/bar".into(),
                },
                Op::Fsync {
                    path: "A/bar".into(),
                },
            ],
        );
        let result = profile(&workload);
        let cp = result.checkpoints.last().unwrap();
        assert!(
            cp.durable_renames.is_empty(),
            "fsync of a different inode at the destination name must not \
             mark the rename durable: {:?}",
            cp.durable_renames
        );
    }
}
