//! VeriFs: a small synchronous file system standing in for FSCQ, the
//! verified file system in which CrashMonkey and ACE found a data-loss bug.
//!
//! FSCQ's core is proven crash-safe, but the artifact ships unverified glue —
//! the C–Haskell binding — and that is where the paper's bug 11 lives: an
//! optimization in the binding made `fdatasync` skip flushing appended data,
//! losing it on a crash despite the call succeeding. VeriFs mirrors this
//! split: the "verified" core persists the full tree on every persistence
//! call; the single injectable bug models the unverified optimization layer
//! short-circuiting `fdatasync` when it (wrongly) believes no metadata
//! changed.

use b3_block::{BlockDevice, IoFlags, StateDelta};
use b3_vfs::diskfmt::{read_blob, write_blob, SuperBlock};
use b3_vfs::error::{FsError, FsResult};
use b3_vfs::fs::{FileSystem, FsSpec, GuaranteeProfile, WriteMode};
use b3_vfs::metadata::Metadata;
use b3_vfs::recover::{CommittedTreeCache, RecoverDelta};
use b3_vfs::tree::MemTree;
use b3_vfs::workload::FallocMode;
use b3_vfs::KernelEra;

/// VeriFs on-disk magic number.
pub const VERIFS_MAGIC: u32 = 0x4653_4351; // "FSCQ"

/// Which VeriFs bugs are active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VeriBugs {
    /// The unverified optimization layer makes `fdatasync` persist file
    /// contents only up to the previously persisted size, losing appended
    /// data. (New bug 11, acknowledged and patched by the FSCQ authors.)
    pub fdatasync_skips_appends: bool,
}

impl VeriBugs {
    /// No injected bugs.
    pub fn none() -> Self {
        VeriBugs::default()
    }

    /// Every bug enabled.
    pub fn all() -> Self {
        VeriBugs {
            fdatasync_skips_appends: true,
        }
    }

    /// Bugs present for a kernel era. The FSCQ bug is in the 2018 artifact
    /// and unfixed until `Patched`; it does not depend on the Linux kernel
    /// version, so every non-patched era exhibits it.
    pub fn for_era(era: KernelEra) -> Self {
        VeriBugs {
            fdatasync_skips_appends: era != KernelEra::Patched,
        }
    }
}

/// The FSCQ-like file system.
pub struct VeriFs {
    dev: Box<dyn BlockDevice>,
    sb: SuperBlock,
    bugs: VeriBugs,
    working: MemTree,
    committed: MemTree,
}

impl VeriFs {
    /// Formats and mounts a fresh VeriFs.
    pub fn mkfs(mut dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<VeriFs> {
        Self::format(&mut dev)?;
        Self::mount_with_bugs(dev, VeriBugs::for_era(era))
    }

    fn format(dev: &mut Box<dyn BlockDevice>) -> FsResult<()> {
        let tree = MemTree::new();
        let mut sb = SuperBlock::new(VERIFS_MAGIC);
        sb.tree = write_blob(dev.as_mut(), &mut sb, &tree.encode(), IoFlags::META)?;
        sb.write_to(dev.as_mut())
    }

    /// Mounts an existing image with an explicit bug set.
    pub fn mount_with_bugs(dev: Box<dyn BlockDevice>, bugs: VeriBugs) -> FsResult<VeriFs> {
        let sb = SuperBlock::read_from(dev.as_ref(), VERIFS_MAGIC)?;
        let committed = MemTree::decode(&read_blob(dev.as_ref(), sb.tree)?)
            .map_err(|e| FsError::Unmountable(format!("corrupt image: {e}")))?;
        Ok(VeriFs {
            dev,
            sb,
            bugs,
            working: committed.clone(),
            committed,
        })
    }

    /// Mounts with the bugs of a kernel era.
    pub fn mount(dev: Box<dyn BlockDevice>, era: KernelEra) -> FsResult<VeriFs> {
        Self::mount_with_bugs(dev, VeriBugs::for_era(era))
    }

    fn commit_tree(&mut self, tree: &MemTree) -> FsResult<()> {
        let bytes = tree.encode();
        self.sb.tree = write_blob(self.dev.as_mut(), &mut self.sb, &bytes, IoFlags::META)?;
        self.sb.generation += 1;
        self.sb.dirty = true;
        self.sb.write_to(self.dev.as_mut())?;
        self.committed = tree.clone();
        Ok(())
    }

    fn commit_working(&mut self) -> FsResult<()> {
        let tree = self.working.clone();
        self.commit_tree(&tree)
    }
}

impl FileSystem for VeriFs {
    fn fs_name(&self) -> &'static str {
        "verifs"
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        self.working.create_file(path).map(|_| ())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.working.mkdir(path).map(|_| ())
    }

    fn mkfifo(&mut self, path: &str) -> FsResult<()> {
        self.working.mkfifo(path).map(|_| ())
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> FsResult<()> {
        self.working.symlink(target, linkpath).map(|_| ())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.working.link(existing, new).map(|_| ())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.working.unlink(path)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.working.rmdir(path)
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.working.rename(from, to)
    }

    fn write(&mut self, path: &str, offset: u64, data: &[u8], _mode: WriteMode) -> FsResult<()> {
        self.working.write(path, offset, data)
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        self.working.truncate(path, size)
    }

    fn fallocate(&mut self, path: &str, mode: FallocMode, offset: u64, len: u64) -> FsResult<()> {
        self.working.fallocate(path, mode, offset, len)
    }

    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        self.working.setxattr(path, name, value)
    }

    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        self.working.removexattr(path, name)
    }

    fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        self.working.getxattr(path, name)
    }

    fn read(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.working.read(path, offset, len)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.working.readdir(path)
    }

    fn metadata(&self, path: &str) -> FsResult<Metadata> {
        self.working.metadata(path)
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        self.working.readlink(path)
    }

    fn fsync(&mut self, _path: &str) -> FsResult<()> {
        self.commit_working()
    }

    fn fdatasync(&mut self, path: &str) -> FsResult<()> {
        if self.bugs.fdatasync_skips_appends {
            // The unverified optimization: only data within the previously
            // persisted size is flushed; appended bytes (and the size
            // change) are lost.
            let mut tree = self.working.clone();
            if let (Ok(ino), Ok(committed_meta)) =
                (tree.resolve(path), self.committed.metadata(path))
            {
                if let Some(inode) = tree.inode_mut(ino) {
                    if inode.data.len() as u64 > committed_meta.size {
                        inode.data.truncate(committed_meta.size as usize);
                        inode.allocated = inode
                            .allocated
                            .min(committed_meta.size.div_ceil(4096) * 4096);
                    }
                }
            }
            return self.commit_tree(&tree);
        }
        self.commit_working()
    }

    fn sync(&mut self) -> FsResult<()> {
        self.commit_working()
    }

    fn unmount(mut self: Box<Self>) -> FsResult<Box<dyn BlockDevice>> {
        self.commit_working()?;
        self.sb.dirty = false;
        self.sb.write_to(self.dev.as_mut())?;
        Ok(self.dev)
    }

    fn guarantees(&self) -> GuaranteeProfile {
        GuaranteeProfile::linux_default()
    }
}

/// Incremental recovery session for VeriFs (see
/// [`b3_vfs::recover::RecoverDelta`]).
///
/// A VeriFs mount is a single decode of the committed tree (FSCQ's
/// recovery is proven to restore the last committed disk). The session
/// memoizes that decode in a [`CommittedTreeCache`] and skips it when the
/// state delta proves the blob is untouched.
struct VeriRecoverySession {
    bugs: VeriBugs,
    cache: CommittedTreeCache,
    /// Base image whose committed tree is pinned in the cache.
    primed: Option<b3_block::DiskImage>,
}

impl RecoverDelta for VeriRecoverySession {
    fn prime(&mut self, _spec: &dyn FsSpec, base: &b3_block::DiskImage) {
        // State from the previous run proves nothing about this one.
        self.cache.start_run();
        if self.primed.as_ref().is_some_and(|p| p.ptr_eq(base)) {
            return;
        }
        // New base: decode its committed tree once and pin it, so the first
        // crash state of every run replayed onto this base (whose delta is
        // relative to the base) can hit the cache too. All errors are
        // swallowed — priming is an optimization, and `recover` reports
        // mount failures of a broken base exactly as `mount` would.
        self.primed = None;
        let dev = b3_block::CowSnapshotDevice::new(base.clone());
        let Ok(sb) = SuperBlock::read_from(&dev, VERIFS_MAGIC) else {
            return;
        };
        let Ok(tree_bytes) = read_blob(&dev, sb.tree) else {
            return;
        };
        if tree_bytes.is_empty() {
            return;
        }
        let Ok(tree) = MemTree::decode(&tree_bytes) else {
            return;
        };
        self.cache.pin(&sb, tree);
        self.primed = Some(base.clone());
    }

    fn recover(
        &mut self,
        _spec: &dyn FsSpec,
        dev: Box<dyn BlockDevice>,
        delta: Option<&StateDelta>,
    ) -> FsResult<Box<dyn FileSystem>> {
        let sb = SuperBlock::read_from(dev.as_ref(), VERIFS_MAGIC)?;
        let committed = match self.cache.lookup(&sb, delta) {
            Some(tree) => tree.clone(),
            None => {
                // Identical decode (and error) path to `mount_with_bugs` —
                // unless a byte compare proves the cached decode still
                // matches this state's blob.
                let tree_bytes = read_blob(dev.as_ref(), sb.tree)?;
                match self.cache.verify(&sb, &tree_bytes) {
                    Some(tree) => tree.clone(),
                    None => {
                        let tree = MemTree::decode(&tree_bytes)
                            .map_err(|e| FsError::Unmountable(format!("corrupt image: {e}")))?;
                        self.cache.store(&sb, tree_bytes, tree.clone());
                        tree
                    }
                }
            }
        };
        Ok(Box::new(VeriFs {
            dev,
            sb,
            bugs: self.bugs,
            working: committed.clone(),
            committed,
        }))
    }

    fn is_incremental(&self) -> bool {
        true
    }
}

/// Factory for VeriFs instances.
#[derive(Debug, Clone, Copy)]
pub struct VeriFsSpec {
    bugs: VeriBugs,
}

impl VeriFsSpec {
    /// Spec for a kernel era.
    pub fn new(era: KernelEra) -> Self {
        VeriFsSpec {
            bugs: VeriBugs::for_era(era),
        }
    }

    /// Spec with an explicit bug set.
    pub fn with_bugs(bugs: VeriBugs) -> Self {
        VeriFsSpec { bugs }
    }

    /// Fully patched spec.
    pub fn patched() -> Self {
        VeriFsSpec {
            bugs: VeriBugs::none(),
        }
    }
}

impl FsSpec for VeriFsSpec {
    fn name(&self) -> &'static str {
        "verifs"
    }

    fn mkfs(&self, mut device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        VeriFs::format(&mut device)?;
        Ok(Box::new(VeriFs::mount_with_bugs(device, self.bugs)?))
    }

    fn mount(&self, device: Box<dyn BlockDevice>) -> FsResult<Box<dyn FileSystem>> {
        Ok(Box::new(VeriFs::mount_with_bugs(device, self.bugs)?))
    }

    fn recovery_session(&self) -> Box<dyn RecoverDelta + Send> {
        Box::new(VeriRecoverySession {
            bugs: self.bugs,
            cache: CommittedTreeCache::new(),
            primed: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b3_block::RamDisk;

    fn fresh(bugs: VeriBugs) -> VeriFs {
        let mut dev: Box<dyn BlockDevice> = Box::new(RamDisk::new(2048));
        VeriFs::format(&mut dev).unwrap();
        VeriFs::mount_with_bugs(dev, bugs).unwrap()
    }

    fn crash_and_remount(fs: VeriFs, bugs: VeriBugs) -> VeriFs {
        VeriFs::mount_with_bugs(fs.dev, bugs).unwrap()
    }

    #[test]
    fn recovery_session_matches_remount_and_caches_the_committed_tree() {
        use b3_vfs::snapshot::LogicalSnapshot;
        fn crashed_device() -> Box<dyn BlockDevice> {
            let mut fs = fresh(VeriBugs::none());
            fs.create("foo").unwrap();
            fs.write("foo", 0, b"payload", WriteMode::Buffered).unwrap();
            fs.fsync("foo").unwrap();
            fs.create("volatile").unwrap();
            fs.dev // crash: no clean unmount
        }
        let spec = VeriFsSpec::patched();
        let baseline = spec.mount(crashed_device()).unwrap();
        let expected = LogicalSnapshot::capture(baseline.as_ref()).unwrap();

        let mut session = spec.recovery_session();
        assert!(session.is_incremental());
        let first = session.recover(&spec, crashed_device(), None).unwrap();
        assert_eq!(LogicalSnapshot::capture(first.as_ref()).unwrap(), expected);
        let empty = StateDelta::from_blocks(Vec::new());
        let second = session
            .recover(&spec, crashed_device(), Some(&empty))
            .unwrap();
        assert_eq!(LogicalSnapshot::capture(second.as_ref()).unwrap(), expected);
    }

    #[test]
    fn persistence_calls_commit_everything() {
        let mut fs = fresh(VeriBugs::none());
        fs.create("foo").unwrap();
        fs.write("foo", 0, &[1u8; 4096], WriteMode::Buffered)
            .unwrap();
        fs.fsync("foo").unwrap();
        fs.create("volatile").unwrap();
        let fs = crash_and_remount(fs, VeriBugs::none());
        assert_eq!(fs.metadata("foo").unwrap().size, 4096);
        assert!(!fs.exists("volatile"));
    }

    #[test]
    fn fdatasync_append_bug_loses_data() {
        // New bug 11: write (0-4K); sync; write (4-8K); fdatasync; crash.
        let run = |bugs: VeriBugs| -> u64 {
            let mut fs = fresh(bugs);
            fs.create("foo").unwrap();
            fs.write("foo", 0, &[1u8; 4096], WriteMode::Buffered)
                .unwrap();
            fs.sync().unwrap();
            fs.write("foo", 4096, &[2u8; 4096], WriteMode::Buffered)
                .unwrap();
            fs.fdatasync("foo").unwrap();
            let fs = crash_and_remount(fs, bugs);
            fs.metadata("foo").unwrap().size
        };
        assert_eq!(run(VeriBugs::none()), 8192);
        assert_eq!(run(VeriBugs::all()), 4096);
    }

    #[test]
    fn fdatasync_of_overwrite_is_not_affected_by_the_bug() {
        let mut fs = fresh(VeriBugs::all());
        fs.create("foo").unwrap();
        fs.write("foo", 0, &[1u8; 4096], WriteMode::Buffered)
            .unwrap();
        fs.sync().unwrap();
        fs.write("foo", 0, &[9u8; 2048], WriteMode::Buffered)
            .unwrap();
        fs.fdatasync("foo").unwrap();
        let fs = crash_and_remount(fs, VeriBugs::all());
        assert_eq!(fs.read("foo", 0, 4).unwrap(), vec![9u8; 4]);
        assert_eq!(fs.metadata("foo").unwrap().size, 4096);
    }

    #[test]
    fn era_table() {
        assert_eq!(VeriBugs::for_era(KernelEra::Patched), VeriBugs::none());
        assert!(VeriBugs::for_era(KernelEra::V4_16).fdatasync_skips_appends);
    }
}
