//! Print the §3 bug-study tables (Tables 1 and 2 of the paper).
//!
//! Run with: `cargo run --example bug_study`

use b3_harness::study;

fn main() {
    println!("Table 1: the 26 unique (28 total) reported crash-consistency bugs\n");
    println!("{}", study::render_table1());
    println!("\nTable 2: example reported bugs\n");
    println!("{}", study::render_table2());
}
