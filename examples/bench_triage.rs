//! Before/after benchmark of the static persistence-order triage, emitting
//! the `BENCH_9.json` trajectory record at the repo root.
//!
//! The comparison: the **full seq-2 space** under `CrashPointPolicy::All`
//! (every crash state constructed, recovered and checked dynamically — the
//! pre-triage behaviour) versus `CrashPointPolicy::AllTriaged` (crash
//! states whose triage key matches a recorded verdict reuse it and skip
//! the dynamic pipeline entirely). Each mode runs in its own child process
//! (this same binary re-executed with `--mode`), so peak RSS is
//! attributable per mode and neither run warms the other's allocator.
//!
//! Reported per mode: workloads/s and crash-states-covered/s end to end,
//! crash states covered per second of *crash-state-phase* time
//! (construction + recovery + checking — the phases triage actually
//! short-circuits; profiling is identical in both modes and dominated by
//! workload execution), and peak RSS. The parent also proves the two modes
//! produce **byte-identical bug groups**: each child fingerprints its
//! merged `GroupTable` wire encoding, and the parent refuses to write the
//! record if the digests differ. Run from the repo root:
//!
//! ```text
//! cargo run --release --example bench_triage [-- --stop-after N] [--out FILE]
//! ```

use std::time::{Duration, Instant};

use b3::prelude::*;
use b3_harness::GroupTable;
use b3_vfs::codec::Encoder;

struct ModeStats {
    mode: &'static str,
    workloads: u64,
    tested: u64,
    reused: u64,
    bug_reports: u64,
    bug_groups: u64,
    groups_digest: u128,
    elapsed: Duration,
    profile_time: Duration,
    crash_phase_time: Duration,
    peak_rss_bytes: u64,
}

impl ModeStats {
    fn covered(&self) -> u64 {
        self.tested + self.reused
    }

    fn workloads_per_s(&self) -> f64 {
        self.workloads as f64 / self.elapsed.as_secs_f64()
    }

    fn covered_per_s(&self) -> f64 {
        self.covered() as f64 / self.elapsed.as_secs_f64()
    }

    /// Crash states covered per second of construction + recovery +
    /// checking time — the phases `AllTriaged` short-circuits (profiling
    /// is identical work in both modes).
    fn crash_phase_covered_per_s(&self) -> f64 {
        self.covered() as f64 / self.crash_phase_time.as_secs_f64()
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"workloads\": {}, \"crash_states_covered\": {}, \
             \"crash_states_tested\": {}, \"crash_states_reused\": {}, \
             \"bug_reports\": {}, \"bug_groups\": {}, \"groups_digest\": \"{:032x}\", \
             \"elapsed_s\": {:.3}, \"profile_s\": {:.3}, \"crash_phase_s\": {:.3}, \
             \"workloads_per_s\": {:.1}, \"covered_per_s\": {:.1}, \
             \"crash_phase_covered_per_s\": {:.1}, \"peak_rss_bytes\": {}}}",
            self.mode,
            self.workloads,
            self.covered(),
            self.tested,
            self.reused,
            self.bug_reports,
            self.bug_groups,
            self.groups_digest,
            self.elapsed.as_secs_f64(),
            self.profile_time.as_secs_f64(),
            self.crash_phase_time.as_secs_f64(),
            self.workloads_per_s(),
            self.covered_per_s(),
            self.crash_phase_covered_per_s(),
            self.peak_rss_bytes,
        )
    }
}

/// Peak resident set size of this process, from `/proc/self/status`
/// (`VmHWM` is in kB). Zero where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map_or(0, |kb| kb * 1024)
}

/// Child entry: run the budgeted seq-2 space in one mode and print the
/// stats as a `RESULT {json}` line for the parent to collect.
fn child(mode: &str, budget: usize) {
    let crash_points = match mode {
        "all" => CrashPointPolicy::All,
        "triaged" => CrashPointPolicy::AllTriaged { audit: 0 },
        other => panic!("unknown mode {other:?} (all/triaged)"),
    };
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = CrashMonkeyConfig {
        crash_points,
        ..CrashMonkeyConfig::small()
    };
    let monkey = CrashMonkey::with_config(&spec, config);

    let mut stats = ModeStats {
        mode: if matches!(crash_points, CrashPointPolicy::All) {
            "all"
        } else {
            "triaged"
        },
        workloads: 0,
        tested: 0,
        reused: 0,
        bug_reports: 0,
        bug_groups: 0,
        groups_digest: 0,
        elapsed: Duration::ZERO,
        profile_time: Duration::ZERO,
        crash_phase_time: Duration::ZERO,
        peak_rss_bytes: 0,
    };
    let mut groups = GroupTable::new();
    let start = Instant::now();
    for workload in WorkloadGenerator::new(b3::ace::Bounds::paper_seq2()).take(budget) {
        let outcome = monkey.test_workload(&workload).expect("workload runs");
        stats.workloads += 1;
        stats.tested += u64::from(outcome.checkpoints_tested);
        stats.reused += u64::from(outcome.checkpoints_reused);
        stats.profile_time += outcome.timing.profile;
        stats.crash_phase_time += outcome.timing.crash_state_construction
            + outcome.timing.recovery
            + outcome.timing.checking;
        assert!(
            outcome.triage_divergences.is_empty(),
            "triage divergence in {}: {:?}",
            workload.name,
            outcome.triage_divergences
        );
        for bug in outcome.bugs {
            stats.bug_reports += 1;
            groups.observe(bug);
        }
    }
    stats.elapsed = start.elapsed();
    stats.bug_groups = groups.len() as u64;
    let mut enc = Encoder::new();
    groups.encode(&mut enc);
    stats.groups_digest = b3_analyze::Digest128::of(&enc.finish());
    stats.peak_rss_bytes = peak_rss_bytes();
    println!("RESULT {}", stats.to_json());
}

/// Spawns one child per mode and parses its `RESULT` line.
fn run_mode(mode: &str, budget: usize) -> String {
    let exe = std::env::current_exe().expect("own executable");
    let output = std::process::Command::new(exe)
        .args(["--mode", mode, "--stop-after", &budget.to_string()])
        .output()
        .expect("child runs");
    assert!(
        output.status.success(),
        "child --mode {mode} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .lines()
        .find_map(|line| line.strip_prefix("RESULT "))
        .unwrap_or_else(|| panic!("child --mode {mode} printed no RESULT line: {stdout}"))
        .to_string()
}

/// Pulls one numeric field back out of a child's flat RESULT json.
fn json_f64(json: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle).map(|i| i + needle.len());
    let Some(start) = start else {
        panic!("child RESULT has no {key:?} field: {json}");
    };
    json[start..]
        .split([',', '}'])
        .next()
        .and_then(|token| token.trim().trim_matches('"').parse().ok())
        .unwrap_or_else(|| panic!("child RESULT field {key:?} is not numeric: {json}"))
}

/// Pulls a string field back out of a child's flat RESULT json.
fn json_str(json: &str, key: &str) -> String {
    let needle = format!("\"{key}\": \"");
    let start = json.find(&needle).map(|i| i + needle.len());
    let Some(start) = start else {
        panic!("child RESULT has no {key:?} field: {json}");
    };
    json[start..]
        .split('"')
        .next()
        .map(std::string::ToString::to_string)
        .expect("string field terminates")
}

fn main() {
    let mut mode = None;
    let mut budget = usize::MAX;
    let mut out = "BENCH_9.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => mode = Some(args.next().expect("--mode needs all/triaged")),
            "--stop-after" => {
                budget = args
                    .next()
                    .expect("--stop-after needs a number")
                    .parse()
                    .expect("--stop-after needs a number");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    if let Some(mode) = mode {
        child(&mode, budget);
        return;
    }

    if budget == usize::MAX {
        println!("benchmarking the full seq-2 space per mode (CowFs@4.16)...");
    } else {
        println!("benchmarking {budget} seq-2 workloads per mode (CowFs@4.16)...");
    }
    let before = run_mode("all", budget);
    println!("  exhaustive (All):      {before}");
    let after = run_mode("triaged", budget);
    println!("  triaged (AllTriaged):  {after}");

    // The whole point of the triage is that skipping a crash state is
    // invisible in the output: identical groups, or the record is not
    // written.
    let before_digest = json_str(&before, "groups_digest");
    let after_digest = json_str(&after, "groups_digest");
    assert_eq!(
        before_digest, after_digest,
        "bug groups diverged between All and AllTriaged"
    );
    assert_eq!(
        json_f64(&before, "crash_states_covered"),
        json_f64(&after, "crash_states_covered"),
        "crash-state coverage diverged between All and AllTriaged"
    );

    let speedup_crash_phase = json_f64(&after, "crash_phase_covered_per_s")
        / json_f64(&before, "crash_phase_covered_per_s");
    let speedup_end_to_end = json_f64(&after, "covered_per_s") / json_f64(&before, "covered_per_s");
    println!(
        "  crash-state-phase speedup: {speedup_crash_phase:.2}x \
         (end to end {speedup_end_to_end:.2}x; profiling is identical in both modes)"
    );

    let json = format!(
        "{{\n  \"bench\": \"static persistence-order triage (PR 9)\",\n  \
         \"space\": \"seq-2 full space, CowFs@4.16, CrashPointPolicy::All vs AllTriaged\",\n  \
         \"metrics\": \"covered_per_s is crash states covered (tested + reused) per second \
         end to end; crash_phase_covered_per_s is over construction + recovery + checking \
         alone (the phases triage short-circuits; profiling is identical work in both \
         modes); groups_digest fingerprints the merged bug-group table wire encoding\",\n  \
         \"identical_bug_groups\": true,\n  \
         \"speedup_crash_phase\": {speedup_crash_phase:.2},\n  \
         \"speedup_end_to_end\": {speedup_end_to_end:.2},\n  \
         \"before\": {before},\n  \"after\": {after}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write trajectory record");
    println!("wrote {out}");
}
