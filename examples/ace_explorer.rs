//! Explore ACE's bounded workload generation: show the four phases on the
//! paper's Figure 4 example, then report how many workloads each Table 4
//! preset expands to and how relaxing the bounds grows the space (§5.2).
//!
//! Run with: `cargo run --release --example ace_explorer [--exact]`
//!
//! By default the seq-3 spaces are estimated analytically; pass `--exact` to
//! walk them exhaustively (slower).

use b3::prelude::*;
use b3_ace::phases::{phase1_skeletons, phase3_persistence, phase4_dependencies};
use b3_vfs::workload::{Op, OpKind};

fn main() {
    let exact = std::env::args().any(|a| a == "--exact");

    // --- Figure 4: a seq-2 workload through the four phases -------------------
    println!("Figure 4 walk-through (rename + link):\n");
    let bounds = Bounds::paper_seq2();
    println!(
        "phase 1: {} skeletons of length 2",
        phase1_skeletons(&bounds).len()
    );
    let core = vec![
        Op::Rename {
            from: "A/foo".into(),
            to: "B/bar".into(),
        },
        Op::Link {
            existing: "B/bar".into(),
            new: "A/bar".into(),
        },
    ];
    println!("phase 2 picked: rename(A/foo, B/bar); link(B/bar, A/bar)");
    let with_persistence = phase3_persistence(&core, &bounds);
    println!(
        "phase 3: {} persistence-point variants",
        with_persistence.len()
    );
    let workload = phase4_dependencies("figure-4", with_persistence[0].clone(), &bounds)
        .expect("figure 4 workload is valid");
    println!("phase 4 output:\n{workload}");

    // --- Table 4 style counts ---------------------------------------------------
    println!("Workloads per Table 4 preset (this reproduction's bounds):\n");
    let mut table = Table::new(vec!["set", "operations", "workloads", "mode"]);
    for preset in SequencePreset::ALL {
        let bounds = preset.bounds();
        let ops = bounds.ops.len();
        let (count, mode) =
            if preset == SequencePreset::Seq1 || preset == SequencePreset::Seq2 || exact {
                let mut generator = WorkloadGenerator::new(bounds);
                let emitted = generator.by_ref().count() as u64;
                (emitted, "exact")
            } else {
                (WorkloadGenerator::estimate_candidates(&bounds), "estimated")
            };
        table.row(vec![
            preset.name().to_string(),
            ops.to_string(),
            count.to_string(),
            mode.to_string(),
        ]);
    }
    println!("{}", table.render());

    // --- Relaxing the bounds -----------------------------------------------------
    let base = Bounds::paper_seq3_metadata();
    let relaxed = Bounds::paper_seq3_metadata().with_nested_files();
    let base_estimate = WorkloadGenerator::estimate_candidates(&base);
    let relaxed_estimate = WorkloadGenerator::estimate_candidates(&relaxed);
    println!(
        "relaxing the file-set bound with one nested directory grows seq-3-metadata \
         from {} to {} candidate workloads ({:.1}x; the paper reports 2.5x)",
        base_estimate,
        relaxed_estimate,
        relaxed_estimate as f64 / base_estimate as f64
    );

    // --- Custom bounds -------------------------------------------------------------
    let custom = Bounds::paper_seq2().with_ops(vec![OpKind::Falloc, OpKind::WriteBuffered]);
    println!(
        "\na user-restricted seq-2 bound (falloc + write only) expands to {} workloads",
        generate_count(custom)
    );
}

fn generate_count(bounds: Bounds) -> usize {
    WorkloadGenerator::new(bounds).count()
}
