//! Application-level crash testing: sweep a bounded transaction space
//! against the reference WAL+KV engine (`b3_app`, see `docs/APP.md`) and
//! check every crash state with the transaction oracle.
//!
//! By default the engine is built with **all three seeded bugs**
//! (`no-data-fsync,torn-commit,double-replay`) so a bare run demonstrates
//! detection; pass `--engine fixed` for the correct engine (which must
//! come out clean). The sweep runs in-process (`--in-process`) or through
//! the distributed coordinator with stdio child workers (default) or the
//! TCP loopback path (`--transport tcp`) — the same `b3-sweep-worker`
//! code path a fleet deployment uses, dispatching on the v6 job-space
//! kind byte (`docs/PROTOCOL.md`).
//!
//! ```text
//! # every seeded bug detected on the flash FS, in-process:
//! cargo run --release --example app_sweep -- --in-process --fs f2fs
//! # one seeded bug through 2 TCP-loopback workers:
//! cargo run --release --example app_sweep -- \
//!     --workers 2 --transport tcp --preset app-tiny --engine torn-commit
//! # the fixed engine is clean:
//! cargo run --release --example app_sweep -- --engine fixed
//! ```
//!
//! Flags: `--preset NAME` (`app-tiny` (default, 20 workloads) or
//! `app-smoke` (7140 workloads, with aborts)), `--engine PROFILE`
//! (`fixed` or a comma list of `no-data-fsync`, `torn-commit`,
//! `double-replay`), `--fs NAME` (btrfs/ext4/F2FS/FSCQ, default btrfs;
//! note ext4's data=ordered flush masks `no-data-fsync` — see
//! `docs/APP.md`), `--workers N` (default 2), `--shards S` (default 8 ×
//! workers), `--in-process`, `--transport stdio|tcp`, `--checkpoint FILE`
//! (distributed only), `--stop-after M` workloads per invocation.

use std::path::PathBuf;
use std::time::Duration;

use b3::prelude::*;
use b3_harness::distrib::{
    run_with_transport, worker_connect, worker_main, ChildTransport, DistribConfig, SweepJob,
    TcpTransport, Transport, WorkerCommand, WorkerOptions,
};
use b3_harness::{bug_group_table, AppSweep, FsKind, Progress, RunConfig};

struct Args {
    workers: usize,
    preset: String,
    engine: EngineProfile,
    fs: FsKind,
    shards: Option<usize>,
    in_process: bool,
    transport: String,
    checkpoint: Option<PathBuf>,
    stop_after: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        workers: 2,
        preset: "app-tiny".into(),
        engine: EngineProfile {
            commit_without_data_fsync: true,
            torn_commit: true,
            double_replay: true,
        },
        fs: FsKind::Cow,
        shards: None,
        in_process: false,
        transport: "stdio".into(),
        checkpoint: None,
        stop_after: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value = || -> Result<String, String> {
            inline
                .clone()
                .or_else(|| args.next())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--workers" => {
                parsed.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--preset" => parsed.preset = value()?,
            "--engine" => parsed.engine = EngineProfile::parse(&value()?)?,
            "--fs" => {
                let name = value()?;
                parsed.fs = FsKind::parse(&name).ok_or(format!("unknown file system {name:?}"))?;
            }
            "--shards" => {
                parsed.shards = Some(value()?.parse().map_err(|e| format!("--shards: {e}"))?);
            }
            "--in-process" => parsed.in_process = true,
            "--transport" => {
                let name = value()?;
                if name != "stdio" && name != "tcp" {
                    return Err(format!(
                        "unknown transport {name:?} (expected stdio or tcp)"
                    ));
                }
                parsed.transport = name;
            }
            "--checkpoint" => parsed.checkpoint = Some(PathBuf::from(value()?)),
            "--stop-after" => {
                parsed.stop_after =
                    Some(value()?.parse().map_err(|e| format!("--stop-after: {e}"))?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

fn preset_bounds(name: &str) -> Result<TxnBounds, String> {
    match name {
        "app-tiny" => Ok(TxnBounds::tiny()),
        "app-smoke" => Ok(TxnBounds::smoke()),
        other => Err(format!(
            "unknown preset {other:?} (expected app-tiny or app-smoke)"
        )),
    }
}

fn main() {
    // Child processes re-exec this binary with `--worker`: the generic
    // sweep worker, which dispatches on the job's space kind byte and runs
    // the transaction-oracle path for app jobs.
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|arg| arg == "--worker") {
        let mut connect = None;
        let mut iter = argv.iter().skip(1);
        while let Some(arg) = iter.next() {
            if arg == "--connect" {
                connect = iter.next().cloned();
            }
        }
        let options = WorkerOptions::default();
        let code = match connect {
            Some(addr) => worker_connect(&addr, options),
            None => worker_main(options),
        };
        std::process::exit(code);
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("app_sweep: {message}");
            std::process::exit(2);
        }
    };
    let bounds = match preset_bounds(&args.preset) {
        Ok(bounds) => bounds,
        Err(message) => {
            eprintln!("app_sweep: {message}");
            std::process::exit(2);
        }
    };
    let num_shards = args.shards.unwrap_or(args.workers.max(1) * 8);

    // Patched-era host + every crash point: any violation is the engine's
    // fault, and the intermediate persistence points are where the seeded
    // bugs live.
    let mut job = SweepJob::new_app(bounds.clone(), args.engine, num_shards);
    job.fs = args.fs;
    job.era = KernelEra::Patched;
    job.crashmonkey.crash_points = CrashPointPolicy::All;

    let total = bounds.candidates();
    println!(
        "app sweep: {} ({total} transaction workloads) on {} @ {}, engine [{}], {num_shards} shards",
        args.preset,
        job.fs.spec(job.era).name(),
        job.era.as_str(),
        args.engine.describe(),
    );

    let (summary, groups) = if args.in_process {
        println!("mode: in-process, {} worker threads", args.workers.max(1));
        let spec = job.fs.spec(job.era);
        let config = RunConfig {
            threads: args.workers.max(1),
            crashmonkey: job.crashmonkey,
            stop_after_workloads: args.stop_after,
            ..RunConfig::default()
        };
        let sweep = AppSweep::new(spec.as_ref(), config, args.engine).shards(num_shards);
        let mut checkpoint = sweep.empty_checkpoint(&bounds);
        let summary = sweep.run_resumable(&bounds, &mut checkpoint);
        let groups = checkpoint.bug_groups();
        (summary, groups)
    } else {
        let transport: Box<dyn Transport> = {
            let self_exe = std::env::current_exe().expect("example knows its own executable");
            let worker_cmd = WorkerCommand::new(&self_exe).arg("--worker");
            if args.transport == "tcp" {
                let transport = TcpTransport::bind("127.0.0.1:0")
                    .unwrap_or_else(|e| {
                        eprintln!("app_sweep: loopback listener: {e}");
                        std::process::exit(1);
                    })
                    .with_launcher(worker_cmd);
                println!(
                    "mode: distributed, {} workers dialing tcp loopback {}",
                    args.workers,
                    transport.local_addr()
                );
                Box::new(transport)
            } else {
                println!("mode: distributed, {} stdio child workers", args.workers);
                Box::new(ChildTransport::new(worker_cmd))
            }
        };
        let config = DistribConfig {
            workers: args.workers,
            checkpoint_path: args.checkpoint.clone(),
            stop_after_workloads: args.stop_after,
            progress_interval: Duration::from_secs(2),
            ..DistribConfig::default()
        };
        let progress = |p: &Progress| println!("  [progress] {}", p.describe());
        let outcome = match run_with_transport(&job, &config, transport.as_ref(), Some(&progress)) {
            Ok(outcome) => outcome,
            Err(error) => {
                eprintln!("app_sweep: {error}");
                std::process::exit(1);
            }
        };
        if outcome.failed_workers > 0 {
            println!(
                "{} worker(s) died; their shards were re-queued",
                outcome.failed_workers
            );
        }
        if !outcome.is_complete() {
            match &args.checkpoint {
                Some(path) => println!(
                    "sweep incomplete; re-run the same command to resume from {}",
                    path.display()
                ),
                None => println!("sweep incomplete and no --checkpoint was given"),
            }
        }
        let groups = outcome.checkpoint.bug_groups();
        (outcome.summary, groups)
    };

    if !groups.is_empty() {
        println!("\noracle violations by (workload skeleton x consequence):");
        println!("{}", bug_group_table(&groups).render());
    }
    println!(
        "\n{} of {total} workloads tested ({} skipped) | {} raw oracle violations | bug groups: {}",
        summary.tested,
        summary.skipped,
        summary.raw_reports,
        groups.len(),
    );
}
