//! Before/after benchmark of the incremental crash-state recovery engine,
//! emitting the `BENCH_7.json` trajectory record at the repo root.
//!
//! The comparison: a `CrashPointPolicy::All` run over a seq-2 slice, once
//! with `RecoveryMode::Remount` (every crash state mounted from scratch —
//! the pre-incremental-recovery behaviour) and once with
//! `RecoveryMode::PatchForward` (the first state mounted, every subsequent
//! state recovered by patching the previous view forward with the
//! adjacent-state block delta). Each mode runs in its own child process
//! (this same binary re-executed with `--mode`), so peak RSS is
//! attributable per mode and neither run warms the other's allocator.
//!
//! Reported per mode: workloads/s and crash-states/s end to end, crash
//! states recovered per second of recovery-engine time (the phase the two
//! modes actually differ in), and peak RSS (`VmHWM`). Run from the repo
//! root:
//!
//! ```text
//! cargo run --release --example bench_recovery [-- --stop-after N] [--out FILE]
//! ```

use std::time::{Duration, Instant};

use b3::prelude::*;

/// Workload budget: enough seq-2 workloads that per-process startup noise
/// vanishes, small enough to finish in seconds per mode.
const DEFAULT_BUDGET: usize = 10_000;

struct ModeStats {
    mode: &'static str,
    workloads: u64,
    crash_states: u64,
    bugs: u64,
    elapsed: Duration,
    recovery_time: Duration,
    peak_rss_bytes: u64,
}

impl ModeStats {
    fn workloads_per_s(&self) -> f64 {
        self.workloads as f64 / self.elapsed.as_secs_f64()
    }

    fn crash_states_per_s(&self) -> f64 {
        self.crash_states as f64 / self.elapsed.as_secs_f64()
    }

    fn recovery_states_per_s(&self) -> f64 {
        self.crash_states as f64 / self.recovery_time.as_secs_f64()
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"workloads\": {}, \"crash_states\": {}, \
             \"bugs\": {}, \"elapsed_s\": {:.3}, \"recovery_s\": {:.3}, \
             \"workloads_per_s\": {:.1}, \"crash_states_per_s\": {:.1}, \
             \"recovery_crash_states_per_s\": {:.1}, \"peak_rss_bytes\": {}}}",
            self.mode,
            self.workloads,
            self.crash_states,
            self.bugs,
            self.elapsed.as_secs_f64(),
            self.recovery_time.as_secs_f64(),
            self.workloads_per_s(),
            self.crash_states_per_s(),
            self.recovery_states_per_s(),
            self.peak_rss_bytes,
        )
    }
}

/// Peak resident set size of this process, from `/proc/self/status`
/// (`VmHWM` is in kB). Zero where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map_or(0, |kb| kb * 1024)
}

/// Child entry: run the budgeted seq-2 `All`-policy slice in one mode and
/// print the stats as a `RESULT {json}` line for the parent to collect.
fn child(mode: &str, budget: usize) {
    let recovery = match mode {
        "remount" => RecoveryMode::Remount,
        "delta" => RecoveryMode::PatchForward,
        other => panic!("unknown mode {other:?} (remount/delta)"),
    };
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = CrashMonkeyConfig {
        crash_points: CrashPointPolicy::All,
        recovery,
        ..CrashMonkeyConfig::small()
    };
    let monkey = CrashMonkey::with_config(&spec, config);

    let mut stats = ModeStats {
        mode: if recovery == RecoveryMode::Remount {
            "remount"
        } else {
            "delta"
        },
        workloads: 0,
        crash_states: 0,
        bugs: 0,
        elapsed: Duration::ZERO,
        recovery_time: Duration::ZERO,
        peak_rss_bytes: 0,
    };
    let start = Instant::now();
    for workload in WorkloadGenerator::new(b3::ace::Bounds::paper_seq2()).take(budget) {
        let outcome = monkey.test_workload(&workload).expect("workload runs");
        stats.workloads += 1;
        stats.crash_states += outcome.checkpoints_tested as u64;
        stats.bugs += outcome.bugs.len() as u64;
        stats.recovery_time += outcome.timing.recovery;
    }
    stats.elapsed = start.elapsed();
    stats.peak_rss_bytes = peak_rss_bytes();
    println!("RESULT {}", stats.to_json());
}

/// Spawns one child per mode and parses its `RESULT` line.
fn run_mode(mode: &str, budget: usize) -> String {
    let exe = std::env::current_exe().expect("own executable");
    let output = std::process::Command::new(exe)
        .args(["--mode", mode, "--stop-after", &budget.to_string()])
        .output()
        .expect("child runs");
    assert!(
        output.status.success(),
        "child --mode {mode} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .lines()
        .find_map(|line| line.strip_prefix("RESULT "))
        .unwrap_or_else(|| panic!("child --mode {mode} printed no RESULT line: {stdout}"))
        .to_string()
}

fn main() {
    let mut mode = None;
    let mut budget = DEFAULT_BUDGET;
    let mut out = "BENCH_7.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => mode = Some(args.next().expect("--mode needs remount/delta")),
            "--stop-after" => {
                budget = args
                    .next()
                    .expect("--stop-after needs a number")
                    .parse()
                    .expect("--stop-after needs a number");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    if let Some(mode) = mode {
        child(&mode, budget);
        return;
    }

    println!("benchmarking {budget} seq-2 workloads per mode under CrashPointPolicy::All...");
    let before = run_mode("remount", budget);
    println!("  remount baseline: {before}");
    let after = run_mode("delta", budget);
    println!("  delta recovery:   {after}");

    let json = format!(
        "{{\n  \"bench\": \"incremental crash-state recovery (PR 7)\",\n  \
         \"space\": \"seq-2, CrashPointPolicy::All, CowFs@4.16, first {budget} candidates\",\n  \
         \"metrics\": \"workloads/s and crash-states/s end to end; \
         recovery_crash_states_per_s over the recovery phase alone; peak RSS in bytes\",\n  \
         \"before\": {before},\n  \"after\": {after}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write trajectory record");
    println!("wrote {out}");
}
