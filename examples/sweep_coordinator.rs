//! Distributed sweep coordinator: run (or resume) a full preset sweep
//! across worker processes on one machine *or across machines* — the
//! analogue of the paper's 780-VM cluster (§6.1), built on
//! `b3_harness::distrib`.
//!
//! The coordinator owns the shard queue and the checkpoint file; workers
//! claim shards over the framed protocol (`docs/PROTOCOL.md`) carried by
//! one of three transports:
//!
//! * `--transport stdio` (default): workers are child processes (this same
//!   binary, re-executed with `--worker`) speaking over stdio.
//! * `--transport tcp`: the coordinator binds a loopback listener and
//!   spawns children that dial it with `--connect` — the self-contained
//!   demo of the network path (CI smokes this).
//! * `--listen ADDR`: bind ADDR and wait for externally started workers
//!   (`b3-sweep-worker --connect HOST:PORT` from any machine that can
//!   reach it). With `--secret S` (or `B3_SWEEP_SECRET`), non-loopback
//!   workers must answer a shared-secret HMAC challenge before the job
//!   is revealed (`docs/PROTOCOL.md`); workers supply the same value.
//! * `--ssh HOST` (repeatable): re-exec the worker on remote hosts over
//!   ssh pipes; `--remote-worker CMD` names the worker binary on the
//!   remote side (default `b3-sweep-worker`).
//!
//! Each worker result is deduplicated at the source into per-bug-group
//! exemplars + counts, merged into the checkpoint, and durably appended to
//! the checkpoint file as one small delta record (an append-only segment
//! log, `docs/FORMATS.md`), so killing the coordinator or any worker
//! mid-sweep loses at most the in-flight shards: re-running the same
//! command resumes from the file. With `--respawn N`, dead workers are
//! replaced on the spot instead of shrinking the fleet.
//!
//! ```text
//! # a bounded smoke of the full 3.9M-candidate seq-3-metadata space:
//! cargo run --release --example sweep_coordinator -- \
//!     --workers 4 --preset seq-3-metadata --checkpoint /tmp/seq3.ck --stop-after 20000
//! # the same slice over TCP loopback with calibrated batch sizing:
//! cargo run --release --example sweep_coordinator -- \
//!     --workers 4 --transport tcp --calibrate --batch-target-ms 2000 \
//!     --preset seq-3-metadata --checkpoint /tmp/seq3.ck --stop-after 20000
//! ```
//!
//! Flags: `--workers N` (default 4), `--preset NAME` (`tiny`, `seq-1`,
//! `seq-2`, `seq-3-data`, `seq-3-metadata` (default), `seq-3-nested`,
//! `seq-4-metadata`), `--shards S` (default 64 × workers), `--fs NAME`
//! (btrfs/ext4/F2FS/FSCQ, default btrfs), `--checkpoint FILE`,
//! `--stop-after M` workloads per invocation, `--respawn N` replacement
//! links per dead worker slot, `--calibrate` (workers measure a burst and
//! report throughput), `--batch-target-ms T` (size each worker's batches
//! to ~T ms of its calibrated rate), `--prune MODE` (`off` (default),
//! `rep`/`representative` to test only each symmetry class's canonical
//! representative, `audit` to additionally re-test sampled members against
//! their representative), `--audit-k K` (members sampled per class per
//! shard in audit mode, default 2), `--crash-points P` (`last` (default)
//! to crash only at each workload's final persistence point, `all` to
//! crash at every persistence point, `triaged` to cover every persistence
//! point but dynamically test only crash states the static
//! persistence-order analysis cannot prove bit-identical to an
//! already-tested one — see docs/ANALYSIS.md), `--triage-audit N`
//! (re-test up to N triage-reused crash states per workload against their
//! witness; requires `triaged`; divergences surface as audit failures and
//! exit code 3). The policy scopes the checkpoint, so an `all` sweep
//! never resumes a `last` checkpoint or vice versa. The big
//! `seq-4-metadata` space (~688M candidates) is only practical with
//! `--prune rep`.
//!
//! For a *long-lived, multi-job* coordinator — a queue of sweeps served
//! by one resident daemon, with enqueue/status/results/cancel over TCP
//! and live bug-group streams — see the `b3-sweep-fleet` binary
//! (`b3_harness::distrib::fleet`).

use std::path::PathBuf;
use std::time::Duration;

use b3::prelude::*;
use b3_harness::distrib::{
    load_checkpoint, run_with_transport, segment_stats, worker_connect, worker_main,
    ChildTransport, DistribConfig, SshTransport, SweepJob, TcpTransport, Transport, WorkerCommand,
    WorkerOptions, DEFAULT_CALIBRATION_WORKLOADS,
};
use b3_harness::{bug_group_table, FsKind, Progress, PruneMode};

struct Args {
    workers: usize,
    preset: String,
    shards: Option<usize>,
    fs: FsKind,
    checkpoint: Option<PathBuf>,
    stop_after: Option<usize>,
    transport: String,
    listen: Option<String>,
    ssh_hosts: Vec<String>,
    remote_worker: String,
    secret: Option<String>,
    respawn: usize,
    calibrate: bool,
    batch_target_ms: Option<u64>,
    prune: PruneMode,
    audit_k: Option<u32>,
    crash_points: CrashPointPolicy,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        workers: 4,
        preset: "seq-3-metadata".into(),
        shards: None,
        fs: FsKind::Cow,
        checkpoint: None,
        stop_after: None,
        transport: "stdio".into(),
        listen: None,
        ssh_hosts: Vec::new(),
        remote_worker: "b3-sweep-worker".into(),
        secret: std::env::var("B3_SWEEP_SECRET")
            .ok()
            .filter(|s| !s.is_empty()),
        respawn: 0,
        calibrate: false,
        batch_target_ms: None,
        prune: PruneMode::Off,
        audit_k: None,
        crash_points: CrashPointPolicy::LastOnly,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value = || -> Result<String, String> {
            inline
                .clone()
                .or_else(|| args.next())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--workers" => {
                parsed.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--preset" => parsed.preset = value()?,
            "--shards" => {
                parsed.shards = Some(value()?.parse().map_err(|e| format!("--shards: {e}"))?);
            }
            "--fs" => {
                let name = value()?;
                parsed.fs = FsKind::parse(&name).ok_or(format!("unknown file system {name:?}"))?;
            }
            "--checkpoint" => parsed.checkpoint = Some(PathBuf::from(value()?)),
            "--stop-after" => {
                parsed.stop_after =
                    Some(value()?.parse().map_err(|e| format!("--stop-after: {e}"))?);
            }
            "--transport" => {
                let name = value()?;
                if name != "stdio" && name != "tcp" {
                    return Err(format!(
                        "unknown transport {name:?} (expected stdio or tcp; \
                         use --listen/--ssh for remote workers)"
                    ));
                }
                parsed.transport = name;
            }
            "--listen" => parsed.listen = Some(value()?),
            "--secret" => parsed.secret = Some(value()?),
            "--ssh" => parsed.ssh_hosts.push(value()?),
            "--remote-worker" => parsed.remote_worker = value()?,
            "--respawn" => {
                parsed.respawn = value()?.parse().map_err(|e| format!("--respawn: {e}"))?;
            }
            "--calibrate" => parsed.calibrate = true,
            "--prune" => {
                let name = value()?;
                parsed.prune = PruneMode::parse(&name)
                    .ok_or(format!("unknown prune mode {name:?} (off/rep/audit)"))?;
            }
            "--audit-k" => {
                parsed.audit_k = Some(value()?.parse().map_err(|e| format!("--audit-k: {e}"))?);
            }
            "--crash-points" => {
                parsed.crash_points = match value()?.as_str() {
                    "last" => CrashPointPolicy::LastOnly,
                    "all" => CrashPointPolicy::All,
                    "triaged" => CrashPointPolicy::AllTriaged { audit: 0 },
                    other => {
                        return Err(format!(
                            "unknown crash-point policy {other:?} (last/all/triaged)"
                        ))
                    }
                }
            }
            "--triage-audit" => {
                let audit = value()?
                    .parse()
                    .map_err(|e| format!("--triage-audit: {e}"))?;
                match &mut parsed.crash_points {
                    CrashPointPolicy::AllTriaged { audit: slot } => *slot = audit,
                    _ => return Err("--triage-audit requires --crash-points triaged".into()),
                }
            }
            "--batch-target-ms" => {
                parsed.batch_target_ms = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--batch-target-ms: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

fn preset_bounds(name: &str) -> Result<Bounds, String> {
    if name == "tiny" {
        return Ok(Bounds::tiny());
    }
    SequencePreset::ALL
        .iter()
        .find(|preset| preset.name() == name)
        .map(SequencePreset::bounds)
        .ok_or(format!(
            "unknown preset {name:?} (expected tiny or a Table 4 name)"
        ))
}

/// Builds the transport the flags ask for. Boxed because the choice is
/// runtime; the coordinator only sees `&dyn Transport`.
fn build_transport(args: &Args) -> Result<Box<dyn Transport>, String> {
    let self_exe = std::env::current_exe().expect("coordinator knows its own executable");
    let mut worker_cmd = WorkerCommand::new(&self_exe).arg("--worker");
    if args.calibrate {
        worker_cmd = worker_cmd.arg("--calibrate");
    }
    if !args.ssh_hosts.is_empty() {
        let mut remote = vec![args.remote_worker.clone()];
        if args.calibrate {
            remote.push("--calibrate".into());
        }
        return Ok(Box::new(SshTransport::new(args.ssh_hosts.clone(), remote)));
    }
    if let Some(addr) = &args.listen {
        let mut transport = TcpTransport::bind(addr)
            .map_err(|e| e.to_string())?
            .with_accept_timeout(Duration::from_secs(300));
        if let Some(secret) = &args.secret {
            // Non-loopback workers must now answer the HMAC challenge;
            // they pass the same value via --secret or B3_SWEEP_SECRET.
            transport = transport.with_secret(secret.clone());
        }
        println!(
            "listening on {}{}; start workers with: b3-sweep-worker --connect {}",
            transport.local_addr(),
            if args.secret.is_some() {
                " (shared-secret challenge armed)"
            } else {
                ""
            },
            transport.local_addr()
        );
        return Ok(Box::new(transport));
    }
    if args.transport == "tcp" {
        let transport = TcpTransport::bind("127.0.0.1:0")
            .map_err(|e| e.to_string())?
            .with_launcher(worker_cmd);
        println!("tcp loopback listener on {}", transport.local_addr());
        return Ok(Box::new(transport));
    }
    Ok(Box::new(ChildTransport::new(worker_cmd)))
}

fn main() {
    // Child processes re-exec this binary with `--worker`; everything after
    // that flag configures the worker side of the protocol.
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|arg| arg == "--worker") {
        let mut options = WorkerOptions::default();
        let mut connect = None;
        let mut iter = argv.iter().skip(1).peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--connect" => connect = iter.next().cloned(),
                "--calibrate" => options.calibration_workloads = DEFAULT_CALIBRATION_WORKLOADS,
                _ => {}
            }
        }
        let code = match connect {
            Some(addr) => worker_connect(&addr, options),
            None => worker_main(options),
        };
        std::process::exit(code);
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep_coordinator: {message}");
            std::process::exit(2);
        }
    };
    let bounds = match preset_bounds(&args.preset) {
        Ok(bounds) => bounds,
        Err(message) => {
            eprintln!("sweep_coordinator: {message}");
            std::process::exit(2);
        }
    };

    // Shard count precedence: --shards, else the shard count of an existing
    // checkpoint (so a sweep can be resumed with a different --workers
    // without being rejected as "a different sweep"), else 64 per worker.
    let mut existing_shards = None;
    if let Some(path) = &args.checkpoint {
        match load_checkpoint(path) {
            Ok(Some(existing)) => {
                println!(
                    "resuming from {}: {}/{} shards already complete",
                    path.display(),
                    existing.completed_shards(),
                    existing.num_shards()
                );
                existing_shards = Some(existing.num_shards());
            }
            Ok(None) => println!("checkpoint file {} (new sweep)", path.display()),
            Err(error) => {
                eprintln!("sweep_coordinator: unreadable checkpoint: {error}");
                std::process::exit(1);
            }
        }
    }
    let num_shards = args
        .shards
        .or(existing_shards)
        .unwrap_or(args.workers.max(1) * 64);
    let total = WorkloadGenerator::estimate_candidates(&bounds);

    let transport = match build_transport(&args) {
        Ok(transport) => transport,
        Err(message) => {
            eprintln!("sweep_coordinator: {message}");
            std::process::exit(1);
        }
    };
    println!(
        "sweeping {} ({total} candidates) over {num_shards} shards with {} workers via {}",
        args.preset,
        args.workers,
        transport.describe()
    );

    let mut job = SweepJob::new(bounds, num_shards);
    job.fs = args.fs;
    job.crashmonkey.crash_points = args.crash_points;
    match args.crash_points {
        CrashPointPolicy::LastOnly => {}
        CrashPointPolicy::All => println!("crash points: all persistence points"),
        CrashPointPolicy::AllTriaged { audit } => println!(
            "crash points: all persistence points, statically triaged \
             (audit {audit} reused states per workload)"
        ),
    }
    job.prune = match (args.prune, args.audit_k) {
        (PruneMode::Audit { .. }, Some(k)) => PruneMode::Audit {
            samples_per_class: k,
        },
        (mode, _) => mode,
    };
    if !job.prune.is_off() {
        println!("prune mode: {:?}", job.prune);
    }
    let config = DistribConfig {
        workers: args.workers,
        checkpoint_path: args.checkpoint.clone(),
        stop_after_workloads: args.stop_after,
        respawn_budget: args.respawn,
        batch_target: args.batch_target_ms.map(Duration::from_millis),
        progress_interval: Duration::from_secs(2),
        ..DistribConfig::default()
    };

    let progress = |p: &Progress| println!("  [progress] {}", p.describe());
    let outcome = match run_with_transport(&job, &config, transport.as_ref(), Some(&progress)) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("sweep_coordinator: {error}");
            std::process::exit(1);
        }
    };

    let summary = &outcome.summary;
    let groups = outcome.checkpoint.bug_groups();
    println!(
        "\n{} of {total} candidates tested ({} skipped, {} pruned as equivalent) | \
         {:.0} workloads/s this run | \
         {} raw reports deduplicated into {} bug groups | {}/{} shards complete",
        summary.tested,
        summary.skipped,
        summary.pruned,
        outcome.throughput_this_run(),
        summary.raw_reports,
        groups.len(),
        outcome.checkpoint.completed_shards(),
        outcome.checkpoint.num_shards(),
    );
    if summary.audited > 0 {
        println!(
            "audit: {} sampled class members re-tested against their representatives",
            summary.audited
        );
    }
    if !summary.audit_failures.is_empty() {
        eprintln!(
            "\nAUDIT FAILURE: {} class member(s) diverged from their representative — \
             the canonicalization (canon v{}) is unsound for this space:",
            summary.audit_failures.len(),
            b3_ace::CANON_VERSION,
        );
        for failure in &summary.audit_failures {
            eprintln!(
                "  class {:?}: member {} vs representative {}: {}",
                failure.class, failure.member, failure.representative, failure.detail
            );
        }
        std::process::exit(3);
    }
    if let Some(path) = &args.checkpoint {
        if let (Ok(metadata), Ok(stats)) = (std::fs::metadata(path), segment_stats(path)) {
            println!(
                "checkpoint file: {} bytes ({} snapshot(s) + {} delta record(s))",
                metadata.len(),
                stats.snapshots,
                stats.deltas,
            );
        }
    }
    if outcome.respawns > 0 {
        println!(
            "{} worker respawn(s) re-established dead links",
            outcome.respawns
        );
    }
    if outcome.failed_workers > 0 {
        println!(
            "{} worker(s) died; their shards were re-queued",
            outcome.failed_workers
        );
    }
    if outcome.is_complete() {
        if !groups.is_empty() {
            println!("\nde-duplicated bug groups (skeleton x consequence):");
            println!("{}", bug_group_table(&groups).render());
        }
        println!("sweep complete");
    } else if let Some(path) = &args.checkpoint {
        println!(
            "sweep incomplete; re-run the same command to resume from {}",
            path.display()
        );
    } else {
        println!("sweep incomplete and no --checkpoint was given, progress is lost");
    }
}
