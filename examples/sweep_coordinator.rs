//! Distributed sweep coordinator: run (or resume) a full preset sweep
//! across worker *processes* — the single-machine analogue of the paper's
//! 780-VM cluster (§6.1), built on `b3_harness::distrib`.
//!
//! The coordinator owns the shard queue and the checkpoint file; each
//! worker is a child process (this same binary, re-executed with
//! `--worker`) that claims shards over stdio, runs them through
//! CrashMonkey, and ships back per-shard results — deduplicated at the
//! source into per-bug-group exemplars + counts, so a bug-dense sweep
//! ships (and checkpoints) tens of groups instead of hundreds of thousands
//! of raw reports. Every result is merged into the checkpoint and durably
//! appended to the checkpoint file as one small delta record (the file is
//! an append-only segment log, compacted at run start and whenever the
//! deltas outgrow the snapshot), so killing the coordinator or any worker
//! mid-sweep loses at most the in-flight shards: re-running the same
//! command resumes from the file.
//!
//! ```text
//! # a bounded smoke of the full 3.9M-candidate seq-3-metadata space:
//! cargo run --release --example sweep_coordinator -- \
//!     --workers 4 --preset seq-3-metadata --checkpoint /tmp/seq3.ck --stop-after 20000
//! # run it again to continue where the previous invocation stopped:
//! cargo run --release --example sweep_coordinator -- \
//!     --workers 4 --preset seq-3-metadata --checkpoint /tmp/seq3.ck --stop-after 20000
//! ```
//!
//! Flags: `--workers N` (default 4), `--preset NAME` (`tiny`, `seq-1`,
//! `seq-2`, `seq-3-data`, `seq-3-metadata` (default), `seq-3-nested`),
//! `--shards S` (default 64 × workers), `--fs NAME` (btrfs/ext4/F2FS/FSCQ,
//! default btrfs), `--checkpoint FILE`, `--stop-after M` workloads per
//! invocation.

use std::path::PathBuf;
use std::time::Duration;

use b3::prelude::*;
use b3_harness::distrib::{
    load_checkpoint, run_distributed, segment_stats, worker_main, DistribConfig, SweepJob,
    WorkerCommand, WorkerOptions,
};
use b3_harness::{bug_group_table, FsKind, Progress};

struct Args {
    workers: usize,
    preset: String,
    shards: Option<usize>,
    fs: FsKind,
    checkpoint: Option<PathBuf>,
    stop_after: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        workers: 4,
        preset: "seq-3-metadata".into(),
        shards: None,
        fs: FsKind::Cow,
        checkpoint: None,
        stop_after: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value = || -> Result<String, String> {
            inline
                .clone()
                .or_else(|| args.next())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--workers" => {
                parsed.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--preset" => parsed.preset = value()?,
            "--shards" => {
                parsed.shards = Some(value()?.parse().map_err(|e| format!("--shards: {e}"))?)
            }
            "--fs" => {
                let name = value()?;
                parsed.fs = FsKind::parse(&name).ok_or(format!("unknown file system {name:?}"))?;
            }
            "--checkpoint" => parsed.checkpoint = Some(PathBuf::from(value()?)),
            "--stop-after" => {
                parsed.stop_after =
                    Some(value()?.parse().map_err(|e| format!("--stop-after: {e}"))?)
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

fn preset_bounds(name: &str) -> Result<Bounds, String> {
    if name == "tiny" {
        return Ok(Bounds::tiny());
    }
    SequencePreset::ALL
        .iter()
        .find(|preset| preset.name() == name)
        .map(SequencePreset::bounds)
        .ok_or(format!(
            "unknown preset {name:?} (expected tiny or a Table 4 name)"
        ))
}

fn main() {
    // Child processes re-exec this binary with `--worker`; everything after
    // that flag is the worker protocol over stdio.
    if std::env::args().any(|arg| arg == "--worker") {
        std::process::exit(worker_main(WorkerOptions::default()));
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep_coordinator: {message}");
            std::process::exit(2);
        }
    };
    let bounds = match preset_bounds(&args.preset) {
        Ok(bounds) => bounds,
        Err(message) => {
            eprintln!("sweep_coordinator: {message}");
            std::process::exit(2);
        }
    };

    // Shard count precedence: --shards, else the shard count of an existing
    // checkpoint (so a sweep can be resumed with a different --workers
    // without being rejected as "a different sweep"), else 64 per worker.
    let mut existing_shards = None;
    if let Some(path) = &args.checkpoint {
        match load_checkpoint(path) {
            Ok(Some(existing)) => {
                println!(
                    "resuming from {}: {}/{} shards already complete",
                    path.display(),
                    existing.completed_shards(),
                    existing.num_shards()
                );
                existing_shards = Some(existing.num_shards());
            }
            Ok(None) => println!("checkpoint file {} (new sweep)", path.display()),
            Err(error) => {
                eprintln!("sweep_coordinator: unreadable checkpoint: {error}");
                std::process::exit(1);
            }
        }
    }
    let num_shards = args
        .shards
        .or(existing_shards)
        .unwrap_or(args.workers.max(1) * 64);
    let total = WorkloadGenerator::estimate_candidates(&bounds);
    println!(
        "sweeping {} ({total} candidates) over {num_shards} shards with {} worker processes",
        args.preset, args.workers
    );

    let mut job = SweepJob::new(bounds, num_shards);
    job.fs = args.fs;
    let config = DistribConfig {
        workers: args.workers,
        checkpoint_path: args.checkpoint.clone(),
        stop_after_workloads: args.stop_after,
        progress_interval: Duration::from_secs(2),
        ..DistribConfig::default()
    };
    let worker =
        WorkerCommand::new(std::env::current_exe().expect("coordinator knows its own executable"))
            .arg("--worker");

    let progress = |p: &Progress| println!("  [progress] {}", p.describe());
    let outcome = match run_distributed(&job, &config, &worker, Some(&progress)) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("sweep_coordinator: {error}");
            std::process::exit(1);
        }
    };

    let summary = &outcome.summary;
    let groups = outcome.checkpoint.bug_groups();
    println!(
        "\n{} of {total} candidates tested ({} skipped) | {:.0} workloads/s this run | \
         {} raw reports deduplicated into {} bug groups | {}/{} shards complete",
        summary.tested,
        summary.skipped,
        outcome.throughput_this_run(),
        summary.raw_reports,
        groups.len(),
        outcome.checkpoint.completed_shards(),
        outcome.checkpoint.num_shards(),
    );
    if let Some(path) = &args.checkpoint {
        if let (Ok(metadata), Ok(stats)) = (std::fs::metadata(path), segment_stats(path)) {
            println!(
                "checkpoint file: {} bytes ({} snapshot(s) + {} delta record(s))",
                metadata.len(),
                stats.snapshots,
                stats.deltas,
            );
        }
    }
    if outcome.failed_workers > 0 {
        println!(
            "{} worker(s) died; their shards were re-queued",
            outcome.failed_workers
        );
    }
    if outcome.is_complete() {
        if !groups.is_empty() {
            println!("\nde-duplicated bug groups (skeleton x consequence):");
            println!("{}", bug_group_table(&groups).render());
        }
        println!("sweep complete");
    } else if let Some(path) = &args.checkpoint {
        println!(
            "sweep incomplete; re-run the same command to resume from {}",
            path.display()
        );
    } else {
        println!("sweep incomplete and no --checkpoint was given, progress is lost");
    }
}
