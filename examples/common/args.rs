//! Command-line helpers shared by the examples (included via `#[path]`).

use b3::prelude::CrashPointPolicy;

/// Parses `--crash-points {last,all}` / `--crash-points=...`: which
/// persistence points each workload is crash-tested at. Defaults to
/// `last`, the paper's strategy for exhaustively generated spaces.
pub fn parse_crash_points() -> CrashPointPolicy {
    let mut args = std::env::args().skip(1);
    let parse = |value: &str| match value {
        "last" => CrashPointPolicy::LastOnly,
        "all" => CrashPointPolicy::All,
        other => panic!("unknown crash-point policy {other:?} (last/all)"),
    };
    while let Some(arg) = args.next() {
        if arg == "--crash-points" {
            let value = args.next().expect("--crash-points needs last/all");
            return parse(&value);
        }
        if let Some(value) = arg.strip_prefix("--crash-points=") {
            return parse(value);
        }
    }
    CrashPointPolicy::LastOnly
}

/// Parses `--stop-after N` / `--stop-after=N` from the command line: a
/// workload budget for the example's sweeps. Returns `None` when absent.
pub fn parse_stop_after() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--stop-after" {
            let value = args.next().expect("--stop-after needs a number");
            return Some(value.parse().expect("--stop-after needs a number"));
        }
        if let Some(value) = arg.strip_prefix("--stop-after=") {
            return Some(value.parse().expect("--stop-after needs a number"));
        }
    }
    None
}
