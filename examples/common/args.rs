//! Command-line helpers shared by the examples (included via `#[path]`).

/// Parses `--stop-after N` / `--stop-after=N` from the command line: a
/// workload budget for the example's sweeps. Returns `None` when absent.
pub fn parse_stop_after() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--stop-after" {
            let value = args.next().expect("--stop-after needs a number");
            return Some(value.parse().expect("--stop-after needs a number"));
        }
        if let Some(value) = arg.strip_prefix("--stop-after=") {
            return Some(value.parse().expect("--stop-after needs a number"));
        }
    }
    None
}
