//! Reproduce the previously-reported crash-consistency bugs (Appendix 9.1).
//!
//! Replays each known-bug corpus workload under CrashMonkey on the kernel era
//! where the bug was unfixed, and prints a table of the observed consequence
//! next to the one the paper reports — the reproduction side of §6.2's
//! "our tools are able to find 24 out of the 26 crash-consistency bugs
//! reported in the last five years".
//!
//! Run with: `cargo run --release --example reproduce_known_bugs`

use b3::prelude::*;
use b3_harness::corpus::{known_bugs, ReproStatus};

fn main() {
    let mut table = Table::new(vec![
        "bug",
        "file system",
        "kernel",
        "status",
        "observed consequence",
    ]);
    let mut reproduced = 0usize;
    let mut total = 0usize;

    for entry in known_bugs() {
        if entry.id.ends_with("-f2fs") {
            // Cross-file-system duplicate; counted with the primary entry.
        } else {
            total += 1;
        }
        if !entry.is_runnable() {
            table.row(vec![
                entry.id.to_string(),
                entry.fs.paper_name().to_string(),
                entry.era.to_string(),
                "not reproduced".to_string(),
                entry.note.to_string(),
            ]);
            continue;
        }
        let check = entry.replay().expect("corpus workload runs");
        let observed = check
            .observed
            .map_or_else(|| "none".to_string(), |c| c.describe().to_string());
        if check.detected_expected && !entry.id.ends_with("-f2fs") {
            reproduced += 1;
        }
        let status = match (check.detected_expected, entry.status) {
            (true, ReproStatus::Reproduced) => "reproduced",
            (true, ReproStatus::Approximate) => "reproduced (adapted)",
            (true, ReproStatus::NotReproduced) | (false, _) => "NOT detected",
        };
        table.row(vec![
            entry.id.to_string(),
            entry.fs.paper_name().to_string(),
            entry.era.to_string(),
            status.to_string(),
            observed,
        ]);
    }

    println!("{}", table.render());
    println!(
        "reproduced {reproduced} of {total} unique previously-reported bugs (paper: 24 of 26)"
    );
}
