//! Quickstart: reproduce the paper's Figure 1 bug, then run the whole
//! B3 pipeline (ACE → runner → CrashMonkey → dedup) over the seq-1 bound.
//!
//! Part 1 — the workload (create foo; link foo bar; sync; unlink bar;
//! create bar; fsync bar; CRASH) makes pre-4.16 btrfs un-mountable. It runs
//! under CrashMonkey against the btrfs-like CowFs, once with the buggy-era
//! bug set and once fully patched.
//!
//! Part 2 — ACE exhaustively generates every seq-1 workload within the
//! paper's bounds and the multi-threaded runner fans them out to one
//! CrashMonkey instance per worker thread; the run's `RunSummary` and the
//! de-duplicated bug groups are printed (the in-process analogue of the
//! paper's 65-node cluster run).
//!
//! Run with: `cargo run --release --example quickstart`

use b3::prelude::*;

fn main() {
    figure_1_bug();
    seq1_pipeline();
}

fn figure_1_bug() {
    let workload = parse_workload(
        "# workload figure-1\n\
         [ops]\n\
         creat foo\n\
         link foo bar\n\
         sync\n\
         unlink bar\n\
         creat bar\n\
         fsync bar\n",
        "figure-1",
    )
    .expect("workload parses");

    println!("Workload under test (Figure 1 of the paper):\n{workload}");

    // A btrfs-like file system from the era in which the bug was reported.
    let buggy = CowFsSpec::new(KernelEra::V4_15);
    let config = CrashMonkeyConfig::small();
    let outcome = CrashMonkey::with_config(&buggy, config)
        .test_workload(&workload)
        .expect("crash testing runs");

    println!("--- kernel 4.15 era ---");
    if outcome.bugs.is_empty() {
        println!("no bug found (unexpected!)");
    } else {
        for bug in &outcome.bugs {
            println!("{bug}");
        }
    }

    // The same workload on a fully patched file system passes every check.
    let patched = CowFsSpec::patched();
    let outcome = CrashMonkey::with_config(&patched, config)
        .test_workload(&workload)
        .expect("crash testing runs");
    println!("--- patched file system ---");
    println!(
        "bugs found: {} (checkpoints tested: {})",
        outcome.bugs.len(),
        outcome.checkpoints_tested
    );
}

fn seq1_pipeline() {
    println!("\n=== seq-1 pipeline: ACE -> runner -> CrashMonkey -> dedup ===\n");

    let bounds = b3::ace::Bounds::paper_seq1();
    println!("bounds: {}", bounds.describe());

    let spec = CowFsSpec::new(KernelEra::V4_15);
    // At least four workers even on small machines, so the example always
    // exercises the concurrent fan-out path.
    let config = RunConfig {
        threads: RunConfig::default().threads.max(4),
        ..RunConfig::default()
    };
    println!(
        "running every seq-1 workload on {} with {} worker threads...",
        spec.name(),
        config.threads
    );
    let summary = run_stream(&spec, WorkloadGenerator::new(bounds), &config);

    println!("\nRunSummary:");
    println!("  tested:       {}", summary.tested);
    println!("  skipped:      {}", summary.skipped);
    println!("  bug reports:  {}", summary.reports.len());
    println!("  elapsed:      {:.2?}", summary.elapsed);
    println!("  avg latency:  {:.2?}", summary.avg_workload_latency());
    println!("  throughput:   {:.0} workloads/s", summary.throughput());

    let groups = group_reports(&summary.reports);
    if groups.is_empty() {
        println!("\nno bugs found in the seq-1 space (unexpected on a 4.15-era fs)");
        return;
    }
    println!("\nde-duplicated bug groups (skeleton x consequence):");
    let mut table = Table::new(vec![
        "skeleton",
        "consequence",
        "reports",
        "example workload",
    ]);
    for group in &groups {
        table.row(vec![
            group.skeleton.clone(),
            group.consequence.to_string(),
            group.count.to_string(),
            group.example.workload_name.clone(),
        ]);
    }
    println!("{}", table.render());
}
