//! Quickstart: reproduce the paper's Figure 1 bug, run the whole B3
//! pipeline (ACE → runner → CrashMonkey → dedup) over the seq-1 bound, then
//! drive a full seq-2 sweep through the sharded, resumable sweep engine.
//!
//! Part 1 — the workload (create foo; link foo bar; sync; unlink bar;
//! create bar; fsync bar; CRASH) makes pre-4.16 btrfs un-mountable. It runs
//! under CrashMonkey against the btrfs-like CowFs, once with the buggy-era
//! bug set and once fully patched.
//!
//! Part 2 — ACE exhaustively generates every seq-1 workload within the
//! paper's bounds and the multi-threaded runner fans them out to one
//! CrashMonkey instance per worker thread; the run's `RunSummary` and the
//! de-duplicated bug groups are printed (the in-process analogue of the
//! paper's 65-node cluster run).
//!
//! Part 3 — the seq-2 space (~400K candidates) is split into generator
//! shards that worker threads steal whole; progress is reported every two
//! seconds, completed shards are recorded in a `SweepCheckpoint` (the bytes
//! a long-running sweep would persist to disk), and a kill-and-resume round
//! trip is demonstrated on a link/rename subspace.
//!
//! Run with: `cargo run --release --example quickstart
//! [-- --stop-after N] [--crash-points {last,all}]`

use std::time::Duration;

use b3::prelude::*;
use b3_harness::{Progress, RunSummary, Sweep, SweepCheckpoint};
use b3_vfs::workload::OpKind;

#[path = "common/args.rs"]
mod args;

fn main() {
    let stop_after = args::parse_stop_after();
    let crash_points = args::parse_crash_points();
    figure_1_bug();
    seq1_pipeline();
    seq2_sweep(stop_after, crash_points);
    resume_demo();
}

fn figure_1_bug() {
    let workload = parse_workload(
        "# workload figure-1\n\
         [ops]\n\
         creat foo\n\
         link foo bar\n\
         sync\n\
         unlink bar\n\
         creat bar\n\
         fsync bar\n",
        "figure-1",
    )
    .expect("workload parses");

    println!("Workload under test (Figure 1 of the paper):\n{workload}");

    // A btrfs-like file system from the era in which the bug was reported.
    let buggy = CowFsSpec::new(KernelEra::V4_15);
    let config = CrashMonkeyConfig::small();
    let outcome = CrashMonkey::with_config(&buggy, config)
        .test_workload(&workload)
        .expect("crash testing runs");

    println!("--- kernel 4.15 era ---");
    if outcome.bugs.is_empty() {
        println!("no bug found (unexpected!)");
    } else {
        for bug in &outcome.bugs {
            println!("{bug}");
        }
    }

    // The same workload on a fully patched file system passes every check.
    let patched = CowFsSpec::patched();
    let outcome = CrashMonkey::with_config(&patched, config)
        .test_workload(&workload)
        .expect("crash testing runs");
    println!("--- patched file system ---");
    println!(
        "bugs found: {} (checkpoints tested: {})",
        outcome.bugs.len(),
        outcome.checkpoints_tested
    );
}

fn print_summary(summary: &RunSummary) {
    println!("  tested:       {}", summary.tested);
    println!("  skipped:      {}", summary.skipped);
    if summary.raw_reports == summary.reports.len() {
        println!("  bug reports:  {}", summary.reports.len());
    } else {
        // Sweep summaries deduplicate at the source: one exemplar per
        // (skeleton, consequence) group, with the raw total alongside.
        println!(
            "  bug reports:  {} raw, kept as {} group exemplars",
            summary.raw_reports,
            summary.reports.len()
        );
    }
    println!("  elapsed:      {:.2?}", summary.elapsed);
    println!("  avg latency:  {:.2?}", summary.avg_workload_latency());
    println!("  throughput:   {:.0} workloads/s", summary.throughput());
}

fn seq1_pipeline() {
    println!("\n=== seq-1 pipeline: ACE -> runner -> CrashMonkey -> dedup ===\n");

    let bounds = b3::ace::Bounds::paper_seq1();
    println!("bounds: {}", bounds.describe());

    let spec = CowFsSpec::new(KernelEra::V4_15);
    // At least four workers even on small machines, so the example always
    // exercises the concurrent fan-out path.
    let config = RunConfig {
        threads: RunConfig::default().threads.max(4),
        ..RunConfig::default()
    };
    println!(
        "running every seq-1 workload on {} with {} worker threads...",
        spec.name(),
        config.threads
    );
    let summary = run_stream(&spec, WorkloadGenerator::new(bounds), &config);

    println!("\nRunSummary:");
    print_summary(&summary);

    let groups = group_reports(&summary.reports);
    if groups.is_empty() {
        println!("\nno bugs found in the seq-1 space (unexpected on a 4.15-era fs)");
        return;
    }
    println!("\nde-duplicated bug groups (skeleton x consequence):");
    println!("{}", b3_harness::bug_group_table(&groups).render());
}

fn seq2_sweep(stop_after: Option<usize>, crash_points: CrashPointPolicy) {
    println!("\n=== seq-2 sweep: sharded work-stealing over the full space ===\n");

    let bounds = b3::ace::Bounds::paper_seq2();
    let candidates = WorkloadGenerator::estimate_candidates(&bounds);
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let config = RunConfig {
        threads: RunConfig::default().threads.max(4),
        stop_after_workloads: stop_after,
        crashmonkey: CrashMonkeyConfig {
            crash_points,
            ..CrashMonkeyConfig::small()
        },
        ..RunConfig::default()
    };
    if crash_points == CrashPointPolicy::All {
        println!("crash points: all persistence points (incremental recovery engaged)");
    }
    match stop_after {
        Some(budget) => println!(
            "sweeping {candidates} seq-2 candidates on {} (budget: {budget} workloads)...",
            spec.name()
        ),
        None => println!(
            "sweeping all {candidates} seq-2 candidates on {}...",
            spec.name()
        ),
    }

    let progress = |p: &Progress| println!("  [progress] {}", p.describe());
    let summary = Sweep::new(&spec, config)
        .on_progress(&progress, Duration::from_secs(2))
        .run(&bounds);

    println!("\nseq-2 RunSummary:");
    print_summary(&summary);
    let groups = group_reports(&summary.reports);
    println!("  bug groups:   {} (skeleton x consequence)", groups.len());
}

/// Kill-and-resume round trip on a small link/rename subspace: a budgeted
/// sweep records completed shards into a checkpoint, the checkpoint is
/// serialized and restored, and the resumed sweep finishes the rest.
fn resume_demo() {
    println!("\n=== resumable sweep: kill after a budget, resume from the checkpoint ===\n");

    let bounds = b3::ace::Bounds::paper_seq2().with_ops(vec![OpKind::Link, OpKind::Rename]);
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let shards = 16;

    // A budget slightly above one shard's candidate count: the "killed" run
    // completes a couple of shards and abandons the one it dies inside.
    let per_shard = WorkloadGenerator::estimate_candidates(&bounds) / shards as u64;
    let budgeted = RunConfig {
        stop_after_workloads: Some(per_shard as usize + 50),
        ..RunConfig::default()
    };
    let mut checkpoint = SweepCheckpoint::new(&bounds, shards);
    let partial = Sweep::new(&spec, budgeted)
        .shards(shards)
        .run_resumable(&bounds, &mut checkpoint);
    println!(
        "killed after budget: {} tested, {}/{} shards recorded, checkpoint {} bytes",
        partial.tested,
        checkpoint.completed_shards(),
        shards,
        checkpoint.to_bytes().len()
    );

    // "Restart": restore the checkpoint from its serialized bytes and finish.
    let mut restored = SweepCheckpoint::from_bytes(&checkpoint.to_bytes()).expect("valid bytes");
    let resumed = Sweep::new(&spec, RunConfig::default())
        .shards(shards)
        .run_resumable(&bounds, &mut restored);
    println!(
        "resumed to completion: {} tested, {} skipped, {} raw reports in {} groups (complete: {})",
        resumed.tested,
        resumed.skipped,
        resumed.raw_reports,
        restored.bug_groups().len(),
        restored.is_complete()
    );
}
