//! Quickstart: reproduce the paper's Figure 1 bug end to end.
//!
//! The workload (create foo; link foo bar; sync; unlink bar; create bar;
//! fsync bar; CRASH) makes pre-4.16 btrfs un-mountable. This example runs it
//! under CrashMonkey against the btrfs-like CowFs, once with the buggy-era
//! bug set and once fully patched, and prints the resulting bug report.
//!
//! Run with: `cargo run --example quickstart`

use b3::prelude::*;

fn main() {
    let workload = parse_workload(
        "# workload figure-1\n\
         [ops]\n\
         creat foo\n\
         link foo bar\n\
         sync\n\
         unlink bar\n\
         creat bar\n\
         fsync bar\n",
        "figure-1",
    )
    .expect("workload parses");

    println!("Workload under test (Figure 1 of the paper):\n{workload}");

    // A btrfs-like file system from the era in which the bug was reported.
    let buggy = CowFsSpec::new(KernelEra::V4_15);
    let config = CrashMonkeyConfig::small();
    let outcome = CrashMonkey::with_config(&buggy, config)
        .test_workload(&workload)
        .expect("crash testing runs");

    println!("--- kernel 4.15 era ---");
    if outcome.bugs.is_empty() {
        println!("no bug found (unexpected!)");
    } else {
        for bug in &outcome.bugs {
            println!("{bug}");
        }
    }

    // The same workload on a fully patched file system passes every check.
    let patched = CowFsSpec::patched();
    let outcome = CrashMonkey::with_config(&patched, config)
        .test_workload(&workload)
        .expect("crash testing runs");
    println!("--- patched file system ---");
    println!(
        "bugs found: {} (checkpoints tested: {})",
        outcome.bugs.len(),
        outcome.checkpoints_tested
    );
}
