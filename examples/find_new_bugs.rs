//! Find the "new" bugs of Table 5 the way the paper did: by running
//! ACE-generated workloads through CrashMonkey on the 4.16-era file systems,
//! then post-processing the reports into distinct bug groups.
//!
//! The full 3.37M-workload sweep of the paper takes a cluster two days; this
//! example runs the exhaustive seq-1 space plus a targeted seq-2 subspace on
//! one machine in seconds, and additionally verifies that every Table 5
//! workload (encoded in the corpus) is detected.
//!
//! Run with: `cargo run --release --example find_new_bugs`

use b3::prelude::*;
use b3_harness::corpus::new_bugs;
use b3_vfs::workload::OpKind;

fn sweep(spec: &(dyn FsSpec + Sync), bounds: Bounds, label: &str) -> Vec<BugReport> {
    let workloads: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
    let total = workloads.len();
    let summary = run_stream(spec, workloads, &RunConfig::default());
    println!(
        "{label}: tested {} of {} workloads in {:.2?} ({:.0} workloads/s), {} raw reports",
        summary.tested,
        total,
        summary.elapsed,
        summary.throughput(),
        summary.reports.len()
    );
    summary.reports
}

fn main() {
    let cow = CowFsSpec::new(KernelEra::V4_16);

    // Exhaustive seq-1 (the paper's 300-workload set) and a focused seq-2
    // subspace around links and renames.
    let mut reports = sweep(&cow, Bounds::paper_seq1(), "seq-1 (cowfs/4.16)");
    reports.extend(sweep(
        &cow,
        Bounds::paper_seq2().with_ops(vec![OpKind::Link, OpKind::Rename, OpKind::Creat]),
        "seq-2 link/rename/creat (cowfs/4.16)",
    ));

    let groups = group_reports(&reports);
    println!("\ndistinct (skeleton, consequence) bug groups found by the sweep:");
    let mut table = Table::new(vec!["skeleton", "consequence", "reports"]);
    for group in &groups {
        table.row(vec![
            group.skeleton.clone(),
            group.consequence.describe().to_string(),
            group.count.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Every Table 5 bug, as encoded in the corpus, is within ACE's seq-3
    // bounds; replay each to confirm detection.
    println!("Table 5 corpus replay:");
    let mut table = Table::new(vec!["bug", "file system", "detected", "consequence"]);
    for entry in new_bugs() {
        let check = entry.replay().expect("corpus entry runs");
        table.row(vec![
            entry.id.to_string(),
            entry.fs.paper_name().to_string(),
            if check.detected_expected { "yes" } else { "NO" }.to_string(),
            check
                .observed
                .map(|c| c.describe().to_string())
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{}", table.render());
}
