//! Find the "new" bugs of Table 5 the way the paper did: by running
//! ACE-generated workloads through CrashMonkey on the 4.16-era file systems,
//! then post-processing the reports into distinct bug groups.
//!
//! The full 3.37M-workload sweep of the paper takes a cluster two days; this
//! example runs the exhaustive seq-1 space plus a targeted seq-2 subspace on
//! one machine in seconds (with periodic progress lines), and additionally
//! verifies that every Table 5 workload (encoded in the corpus) is detected.
//!
//! Run with: `cargo run --release --example find_new_bugs [-- --stop-after N]
//! [--crash-points {last,all}]` (`--stop-after` caps the number of
//! workloads per sweep; `--crash-points all` crash-tests every
//! persistence point instead of only the final one).

use std::time::Duration;

use b3::prelude::*;
use b3_harness::corpus::new_bugs;
use b3_harness::{run_stream_observed, Progress};
use b3_vfs::workload::OpKind;

#[path = "common/args.rs"]
mod args;

fn sweep(
    spec: &(dyn FsSpec + Sync),
    bounds: Bounds,
    label: &str,
    stop_after: Option<usize>,
    crash_points: CrashPointPolicy,
) -> Vec<BugReport> {
    let total = WorkloadGenerator::estimate_candidates(&bounds);
    let config = RunConfig {
        stop_after_workloads: stop_after,
        crashmonkey: CrashMonkeyConfig {
            crash_points,
            ..CrashMonkeyConfig::small()
        },
        ..RunConfig::default()
    };
    let progress = |p: &Progress| println!("  [progress] {}", p.describe());
    let summary = run_stream_observed(
        spec,
        WorkloadGenerator::new(bounds),
        &config,
        Some(&progress),
        Duration::from_secs(2),
    );
    println!(
        "{label}: tested {} of {} candidates in {:.2?} ({:.0} workloads/s), {} raw reports",
        summary.tested,
        total,
        summary.elapsed,
        summary.throughput(),
        summary.reports.len()
    );
    summary.reports
}

fn main() {
    let stop_after = args::parse_stop_after();
    let crash_points = args::parse_crash_points();
    let cow = CowFsSpec::new(KernelEra::V4_16);

    // Exhaustive seq-1 (the paper's 300-workload set) and a focused seq-2
    // subspace around links and renames.
    let mut reports = sweep(
        &cow,
        Bounds::paper_seq1(),
        "seq-1 (cowfs/4.16)",
        stop_after,
        crash_points,
    );
    reports.extend(sweep(
        &cow,
        Bounds::paper_seq2().with_ops(vec![OpKind::Link, OpKind::Rename, OpKind::Creat]),
        "seq-2 link/rename/creat (cowfs/4.16)",
        stop_after,
        crash_points,
    ));

    let groups = group_reports(&reports);
    println!("\ndistinct (skeleton, consequence) bug groups found by the sweep:");
    let mut table = Table::new(vec!["skeleton", "consequence", "reports"]);
    for group in &groups {
        table.row(vec![
            group.skeleton.clone(),
            group.consequence.describe().to_string(),
            group.count.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Every Table 5 bug, as encoded in the corpus, is within ACE's seq-3
    // bounds; replay each to confirm detection.
    println!("Table 5 corpus replay:");
    let mut table = Table::new(vec!["bug", "file system", "detected", "consequence"]);
    for entry in new_bugs() {
        let check = entry.replay().expect("corpus entry runs");
        table.row(vec![
            entry.id.to_string(),
            entry.fs.paper_name().to_string(),
            if check.detected_expected { "yes" } else { "NO" }.to_string(),
            check
                .observed
                .map_or_else(|| "-".to_string(), |c| c.describe().to_string()),
        ]);
    }
    println!("{}", table.render());
}
