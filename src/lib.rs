//! # B3: Bounded Black-Box Crash Testing in Rust
//!
//! A from-scratch reproduction of *"Finding Crash-Consistency Bugs with
//! Bounded Black-Box Crash Testing"* (OSDI 2018): the CrashMonkey
//! record-and-replay crash tester, the ACE bounded exhaustive workload
//! generator, and the simulated storage stack (block devices and four
//! crash-behaviour-faithful file systems with era-gated injectable bugs)
//! they run against.
//!
//! This crate re-exports the workspace's public API under one roof; see the
//! README for a tour and `examples/` for runnable end-to-end scenarios.
//!
//! ```
//! use b3::prelude::*;
//!
//! // Test one workload against the btrfs-like CowFs as shipped in the
//! // paper's evaluation kernel (4.16).
//! let spec = CowFsSpec::new(KernelEra::V4_16);
//! let monkey = CrashMonkey::with_config(&spec, CrashMonkeyConfig::small());
//! let workload = parse_workload(
//!     "[ops]\ncreat foo\nmkdir A\nlink foo A/bar\nfsync foo\n",
//!     "quick",
//! )
//! .unwrap();
//! let outcome = monkey.test_workload(&workload).unwrap();
//! assert!(outcome.found_bug(), "new bug 7: fsync does not persist all paths");
//! ```

pub use b3_ace as ace;
pub use b3_analyze as analyze;
pub use b3_app as app;
pub use b3_block as block;
pub use b3_crashmonkey as crashmonkey;
pub use b3_fs_cow as fs_cow;
pub use b3_fs_flash as fs_flash;
pub use b3_fs_journal as fs_journal;
pub use b3_fs_veri as fs_veri;
pub use b3_harness as harness;
pub use b3_vfs as vfs;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use b3_ace::{Bounds, SequencePreset, WorkloadGenerator};
    pub use b3_analyze::{Analysis, StateDigest, WindowClass};
    pub use b3_app::{
        AppHarness, EngineProfile, TxnBounds, TxnOracle, TxnWorkloadGenerator, WalKv,
    };
    pub use b3_block::{BlockDevice, RamDisk};
    pub use b3_crashmonkey::{
        BugReport, Consequence, CrashMonkey, CrashMonkeyConfig, CrashPointPolicy, RecoveryMode,
        WorkloadOutcome,
    };
    pub use b3_fs_cow::{CowBugs, CowFs, CowFsSpec};
    pub use b3_fs_flash::{FlashBugs, FlashFs, FlashFsSpec};
    pub use b3_fs_journal::{JournalBugs, JournalFs, JournalFsSpec};
    pub use b3_fs_veri::{VeriBugs, VeriFs, VeriFsSpec};
    pub use b3_harness::{
        corpus, group_reports, run_stream, study, KnownBugDatabase, RunConfig, Table,
    };
    pub use b3_vfs::workload::parse_workload;
    pub use b3_vfs::{FileSystem, FsSpec, KernelEra, Op, Workload};
}
