//! Minimal offline stand-in for the `rand` crate.
//!
//! Covers the surface the B3 harness uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`RngCore`], and [`seq::SliceRandom`]. The generator is
//! SplitMix64 — deterministic per seed (which the harness tests rely on),
//! but the stream differs from the real `rand` crate's `StdRng`.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small seeds don't produce correlated streams.
            let mut rng = StdRng { state: seed };
            crate::RngCore::next_u64(&mut rng);
            rng
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use crate::RngCore;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.below(self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}
