//! Test-runner types: configuration, case errors, and the deterministic RNG.

use std::fmt;

/// Subset of proptest's run configuration: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case could not be run (e.g. preconditions unmet); not a failure.
    Reject(String),
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (the case is skipped, not counted as a failure).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
            TestCaseError::Fail(reason) => write!(f, "failed: {reason}"),
        }
    }
}

/// Deterministic SplitMix64 generator seeded from a stable FNV-1a hash of
/// the test name, so every run of a given test explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (stable across runs/platforms).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
