//! Minimal, deterministic, offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements exactly the proptest surface the B3 workspace uses (see
//! `vendor/README.md` for the inventory). Semantics intentionally differ
//! from real proptest in two ways:
//!
//! * **Determinism** — the RNG seed is a stable hash of the test's module
//!   path, so a given test binary always explores the same cases. There is
//!   no persistence (`proptest-regressions/`) and there are no flaky runs.
//! * **No shrinking** — a failing case reports its case index and values
//!   via the assertion message instead of minimizing.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob import used by test files: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`, the module alias giving access
    /// to `prop::collection` and `prop::sample`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs `cases` iterations of a property, seeding the RNG from `test_name`.
///
/// Used by the [`proptest!`] macro expansion; not part of the public
/// proptest API.
pub fn run_property<F>(test_name: &str, cases: u32, mut f: F)
where
    F: FnMut(&mut test_runner::TestRng, u32) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = test_runner::TestRng::from_name(test_name);
    let mut rejected = 0u32;
    for case in 0..cases {
        match f(&mut rng, case) {
            Ok(()) => {}
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > cases.saturating_mul(4) {
                    panic!("{test_name}: too many rejected cases ({rejected})");
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case {case} failed: {msg}");
            }
        }
    }
}

/// Defines deterministic property tests.
///
/// Accepts the subset of real proptest syntax the workspace uses: an
/// optional `#![proptest_config(..)]` header followed by `#[test]` functions
/// whose arguments use `pattern in strategy` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                config.cases,
                |rng, _case| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_cases!(($config) $($rest)*);
    };
}

/// Uniformly chooses between strategies; all arms must produce one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case (with an optional formatted message) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current test case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}
