//! `any::<T>()` for the primitive types the workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T`; obtain via [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns a strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
