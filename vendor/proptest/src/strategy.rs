//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )+
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )+
    };
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
