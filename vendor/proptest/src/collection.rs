//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for vectors whose length is drawn from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates `Vec`s of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let len = self.len.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
