//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy choosing uniformly from a fixed list of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Chooses one of `options` uniformly; panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].clone()
    }
}
