//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Covers exactly the surface the `b3-bench` benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a simple
//! warm-up plus a short fixed wall-clock budget per benchmark — good enough
//! to compare orders of magnitude, not a statistics engine.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and prints a one-line timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        match bencher.report() {
            Some((iters, mean, min)) => {
                println!("bench {name:<50} {mean:>12?}/iter (min {min:?}, {iters} iters)")
            }
            None => println!("bench {name:<50} (no measurement)"),
        }
        self
    }
}

/// Timing loop handed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Option<Duration>,
}

impl Bencher {
    /// Calls `f` repeatedly: a warm-up iteration, then as many timed
    /// iterations as fit in a ~200 ms budget (at least 5, at most 1000).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f());
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        while (self.iters < 5 || started.elapsed() < budget) && self.iters < 1000 {
            let iter_start = Instant::now();
            black_box(f());
            let elapsed = iter_start.elapsed();
            self.total += elapsed;
            self.min = Some(self.min.map_or(elapsed, |m| m.min(elapsed)));
            self.iters += 1;
        }
    }

    fn report(&self) -> Option<(u64, Duration, Duration)> {
        let min = self.min?;
        Some((self.iters, self.total / self.iters as u32, min))
    }
}

/// Declares a benchmark group function calling each target with a
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
