//! Minimal offline stand-in for the `parking_lot` crate, backed by
//! `std::sync`. Matches parking_lot's poison-free API: `lock()` returns the
//! guard directly and a poisoned std lock is transparently recovered.

use std::sync::TryLockError;

/// A mutex whose `lock()` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards are poison-free.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
