//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable (`Arc`-backed) byte
//! buffer covering the surface the B3 block layer uses. Slicing views and
//! `BytesMut` are not implemented.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; clones share storage.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes {
            data: data.as_bytes().into(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter().take(32) {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…(+{} bytes)", self.data.len() - 32)?;
        }
        write!(f, "\"")
    }
}
