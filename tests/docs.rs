//! Documentation consistency checks, run as part of tier-1 `cargo test`
//! and as CI's dedicated docs job.
//!
//! * **Intra-repo links**: every relative link in `README.md` and
//!   `docs/*.md` must point at an existing file, and every `#anchor` must
//!   match a heading in its target document.
//! * **Wire-spec consistency**: the frame-tag table in `docs/PROTOCOL.md`
//!   must match the `wire` constants in
//!   `b3_harness::distrib::protocol`, and the documented protocol version
//!   must equal `PROTOCOL_VERSION`.
//! * **On-disk-format consistency**: the worked hexdumps in
//!   `docs/FORMATS.md` must be byte-identical to a freshly generated
//!   checkpoint file and to a freshly encoded WAL commit record, and the
//!   documented magics/record tags must match the `segment` and app
//!   engine constants.

use std::collections::BTreeMap;
use std::path::PathBuf;

use b3::ace::{Classifier, CANON_VERSION};
use b3::harness::distrib::protocol::{wire, PROTOCOL_VERSION};
use b3::harness::distrib::save_checkpoint;
use b3::harness::distrib::segment::{REC_DELTA, REC_SNAPSHOT, SEGMENT_MAGIC};
use b3::harness::SweepCheckpoint;
use b3::prelude::{Bounds, Op};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The documentation files under link- and consistency-check.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("docs/ directory exists")
        .map(|entry| entry.expect("docs/ entry reads").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "md"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "docs/ must contain the markdown specs this test guards"
    );
    files.extend(entries);
    files
}

/// Extracts `[text](target)` link targets from markdown, skipping fenced
/// code blocks (a hexdump's ASCII gutter could otherwise look like a
/// link).
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let after = &rest[open + 2..];
            let Some(close) = after.find(')') else { break };
            targets.push(after[..close].to_string());
            rest = &after[close + 1..];
        }
    }
    targets
}

/// GitHub-style anchor slug of a heading: lowercase, punctuation dropped,
/// spaces hyphenated.
fn heading_slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' || c == '_' {
                Some(if c == ' ' { '-' } else { c })
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors a markdown document defines.
fn anchors(markdown: &str) -> Vec<String> {
    let mut in_fence = false;
    markdown
        .lines()
        .filter(|line| {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                return false;
            }
            !in_fence && line.starts_with('#')
        })
        .map(|line| heading_slug(line.trim_start_matches('#')))
        .collect()
}

#[test]
fn intra_repo_links_resolve() {
    let mut broken = Vec::new();
    for file in doc_files() {
        let markdown = std::fs::read_to_string(&file).expect("doc file reads");
        let dir = file.parent().expect("doc file has a parent");
        for target in link_targets(&markdown) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((path, anchor)) => (path, Some(anchor.to_string())),
                None => (target.as_str(), None),
            };
            let resolved: PathBuf = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            if !resolved.exists() {
                broken.push(format!("{}: broken link to {target}", file.display()));
                continue;
            }
            if let Some(anchor) = anchor {
                // Anchors are only checkable in markdown targets.
                if resolved.extension().is_some_and(|ext| ext == "md") {
                    let target_markdown = if resolved == file {
                        markdown.clone()
                    } else {
                        std::fs::read_to_string(&resolved).expect("link target reads")
                    };
                    if !anchors(&target_markdown).contains(&anchor) {
                        broken.push(format!(
                            "{}: link to {target} names a missing anchor #{anchor}",
                            file.display()
                        ));
                    }
                }
            }
        }
    }
    assert!(broken.is_empty(), "broken intra-repo links:\n{broken:#?}");
}

/// Parses the PROTOCOL.md frame-tag table into `name -> tag` pairs. Rows
/// look like `| `0x01` | `Job` | coord → worker | … |`.
fn documented_tags(protocol_md: &str) -> BTreeMap<String, u8> {
    let mut tags = BTreeMap::new();
    for line in protocol_md.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() < 4 {
            continue;
        }
        let tag_cell = cells[1].trim_matches('`');
        let Some(hex) = tag_cell.strip_prefix("0x") else {
            continue;
        };
        let Ok(tag) = u8::from_str_radix(hex, 16) else {
            continue;
        };
        let name = cells[2].trim_matches('`').to_string();
        tags.insert(name, tag);
    }
    tags
}

#[test]
fn protocol_spec_matches_the_wire_constants() {
    let path = repo_root().join("docs/PROTOCOL.md");
    let spec = std::fs::read_to_string(&path).expect("docs/PROTOCOL.md exists");

    let documented = documented_tags(&spec);
    let expected: BTreeMap<String, u8> = [
        ("Job".to_string(), wire::JOB),
        ("Assign".to_string(), wire::ASSIGN),
        ("Shutdown".to_string(), wire::SHUTDOWN),
        ("Challenge".to_string(), wire::CHALLENGE),
        ("Hello".to_string(), wire::HELLO),
        ("Claim".to_string(), wire::CLAIM),
        ("ShardDone".to_string(), wire::SHARD_DONE),
        ("Reject".to_string(), wire::REJECT),
        ("Enqueue".to_string(), wire::ENQUEUE),
        ("Status".to_string(), wire::STATUS),
        ("Results".to_string(), wire::RESULTS),
        ("Cancel".to_string(), wire::CANCEL),
        ("Subscribe".to_string(), wire::SUBSCRIBE),
        ("Ack".to_string(), wire::ACK),
        ("StatusReport".to_string(), wire::STATUS_REPORT),
        ("ResultsReport".to_string(), wire::RESULTS_REPORT),
        ("ClientError".to_string(), wire::CLIENT_ERROR),
        ("Event".to_string(), wire::EVENT),
    ]
    .into();
    assert_eq!(
        documented, expected,
        "the PROTOCOL.md tag table must list exactly the wire constants"
    );

    assert!(
        spec.contains(&format!("Protocol version: {PROTOCOL_VERSION}")),
        "PROTOCOL.md must state the current protocol version ({PROTOCOL_VERSION})"
    );
}

/// Renders bytes in the `xxd`-style layout FORMATS.md uses for its worked
/// example.
fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (row, chunk) in bytes.chunks(16).enumerate() {
        let mut hex = String::new();
        for (i, byte) in chunk.iter().enumerate() {
            if i == 8 {
                hex.push(' ');
            }
            hex.push_str(&format!("{byte:02x} "));
        }
        let ascii: String = chunk
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        out.push_str(&format!("{:08x}  {hex:<49} |{ascii}|\n", row * 16));
    }
    out
}

/// The exact tiny checkpoint FORMATS.md walks through: an empty (unscoped)
/// two-shard checkpoint over `Bounds::tiny()`, persisted with
/// `save_checkpoint`. Fully deterministic, so the documented hexdump can
/// be compared byte-for-byte.
fn documented_checkpoint_bytes() -> Vec<u8> {
    let checkpoint = SweepCheckpoint::new(&Bounds::tiny(), 2);
    let path = std::env::temp_dir().join(format!("b3-docs-hexdump-{}.ck", std::process::id()));
    save_checkpoint(&path, &checkpoint).expect("documented checkpoint saves");
    let bytes = std::fs::read(&path).expect("documented checkpoint reads");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn formats_spec_matches_the_on_disk_bytes() {
    let path = repo_root().join("docs/FORMATS.md");
    let spec = std::fs::read_to_string(&path).expect("docs/FORMATS.md exists");

    // The magics and record tags named in the spec are the code's.
    assert_eq!(SEGMENT_MAGIC, *b"B3SG");
    assert!(
        spec.contains("B3SG"),
        "FORMATS.md must name the segment magic"
    );
    assert!(
        spec.contains("B3S4"),
        "FORMATS.md must name the checkpoint payload magic"
    );
    assert!(
        !spec.contains("(`B3S3`)"),
        "FORMATS.md must not still title a section with the superseded magic"
    );
    assert!(
        spec.contains(&format!("`{REC_SNAPSHOT:#04x}`")),
        "FORMATS.md must document the snapshot record tag {REC_SNAPSHOT:#04x}"
    );
    assert!(
        spec.contains(&format!("`{REC_DELTA:#04x}`")),
        "FORMATS.md must document the delta record tag {REC_DELTA:#04x}"
    );

    // The worked hexdump is regenerated from scratch and must match the
    // document byte-for-byte — the example can never drift from the code.
    let dump = hexdump(&documented_checkpoint_bytes());
    for line in dump.lines() {
        assert!(
            spec.contains(line),
            "FORMATS.md hexdump is stale; expected line:\n{line}\n\
             full regenerated dump:\n{dump}"
        );
    }
}

/// The worked WAL commit record FORMATS.md walks through: sequence 1, a
/// 3-byte put of `k0` at heap offset 0, then a delete of `k1`, encoded by
/// the application engine's `encode_commit_record`. Fully deterministic
/// (the checksum is FNV-1a over the record bytes), so the documented
/// hexdump can be compared byte-for-byte.
fn documented_commit_record_bytes() -> Vec<u8> {
    use b3::app::engine::{encode_commit_record, RecordOp, OP_DELETE, OP_PUT};
    encode_commit_record(
        1,
        &[
            RecordOp {
                kind: OP_PUT,
                key: "k0".to_string(),
                val_off: 0,
                val_len: 3,
            },
            RecordOp {
                kind: OP_DELETE,
                key: "k1".to_string(),
                val_off: 0,
                val_len: 0,
            },
        ],
    )
}

#[test]
fn formats_spec_matches_the_wal_record_bytes() {
    use b3::app::engine::{COMMIT_MAGIC, OP_APPEND, OP_DELETE, OP_PUT, SNAPSHOT_MAGIC};

    let path = repo_root().join("docs/FORMATS.md");
    let spec = std::fs::read_to_string(&path).expect("docs/FORMATS.md exists");

    // The magics and op kind bytes named in the spec are the code's.
    assert_eq!(COMMIT_MAGIC, *b"B3AC");
    assert_eq!(SNAPSHOT_MAGIC, *b"B3AS");
    assert!(
        spec.contains("B3AC"),
        "FORMATS.md must name the commit-record magic"
    );
    assert!(
        spec.contains("B3AS"),
        "FORMATS.md must name the snapshot magic"
    );
    for (name, kind) in [
        ("put", OP_PUT),
        ("delete", OP_DELETE),
        ("append", OP_APPEND),
    ] {
        assert!(
            spec.contains(&format!("`{kind:#04x}`")),
            "FORMATS.md must document the {name} op kind byte {kind:#04x}"
        );
    }

    // The worked hexdump is regenerated from scratch and must match the
    // document byte-for-byte — the WAL grammar can never drift from the
    // engine.
    let dump = hexdump(&documented_commit_record_bytes());
    for line in dump.lines() {
        assert!(
            spec.contains(line),
            "FORMATS.md WAL hexdump is stale; expected line:\n{line}\n\
             full regenerated dump:\n{dump}"
        );
    }
}

/// The canonical-key grammar in FORMATS.md is enforced the same way the
/// hexdump is: the worked example key is regenerated through
/// `Classifier::key` on every run and must appear verbatim in the spec,
/// along with the current canon version and its fingerprint scope
/// components.
#[test]
fn formats_spec_matches_the_canon_key_grammar() {
    let path = repo_root().join("docs/FORMATS.md");
    let spec = std::fs::read_to_string(&path).expect("docs/FORMATS.md exists");

    assert!(
        spec.contains(&format!("canon v{CANON_VERSION}")),
        "FORMATS.md must name the current canon version (v{CANON_VERSION})"
    );
    assert!(
        spec.contains(&format!("canon{CANON_VERSION}:rep")),
        "FORMATS.md must document the representative fingerprint scope"
    );

    // The worked example: B/bar and B/foo relabel to first-use ranks
    // under the paper file set's bounds.
    let classifier = Classifier::new(&Bounds::paper_seq2());
    let key = classifier.key(&[
        Op::Creat {
            path: "B/bar".into(),
        },
        Op::Link {
            existing: "B/bar".into(),
            new: "B/foo".into(),
        },
        Op::Fsync {
            path: "B/bar".into(),
        },
    ]);
    assert!(
        spec.contains(&format!("`{key}`")),
        "FORMATS.md worked canon key is stale; regenerated key:\n{key}"
    );
}
