//! Source-level lint checks, run as part of tier-1 `cargo test`.
//!
//! These enforce repo invariants that `rustc` and `clippy` cannot express:
//!
//! * **Determinism**: the enumeration, canonicalization, and codec layers
//!   must never read a wall clock. Workload identity, canonical keys, and
//!   wire bytes are replayed and compared across runs and machines, so a
//!   timestamp anywhere in those paths would silently break resume and
//!   audit equality.
//! * **No panics in the distributed layer**: `harness/src/distrib` runs in
//!   long-lived daemons and remote workers where a panic tears down every
//!   in-flight shard; non-test code there must surface failures as
//!   `FsResult` (or explicitly poison-recover), never `unwrap`/`expect`.
//! * **Wire-tag documentation**: every frame-tag constant in
//!   `protocol::wire` must be named in `docs/PROTOCOL.md`, so a new frame
//!   cannot ship undocumented. (`tests/docs.rs` checks the converse — the
//!   documented table matches the constants' values.)

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every `.rs` file under `dir`, recursively, sorted for stable failure
/// output.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display()));
        for entry in entries {
            let path = entry.expect("directory entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// The portion of a source file before its `#[cfg(test)] mod tests` block
/// (tests may unwrap freely; shipped code may not).
fn non_test_code(source: &str) -> &str {
    match source.find("#[cfg(test)]\nmod tests") {
        Some(idx) => &source[..idx],
        None => source,
    }
}

/// Lines of `source` that are code, paired with 1-based line numbers:
/// comment-only lines are dropped so a pattern named in a doc comment does
/// not trip the lint.
fn code_lines(source: &str) -> impl Iterator<Item = (usize, &str)> {
    source
        .lines()
        .enumerate()
        .map(|(i, line)| (i + 1, line))
        .filter(|(_, line)| {
            let trimmed = line.trim_start();
            !(trimmed.starts_with("//") || trimmed.starts_with("#!["))
        })
}

/// Collects `path:line: text` hits of any of `patterns` in the non-test
/// code of every file under `roots`.
fn scan(roots: &[PathBuf], patterns: &[&str]) -> Vec<String> {
    let mut hits = Vec::new();
    for root in roots {
        let files = if root.is_dir() {
            rust_sources(root)
        } else {
            vec![root.clone()]
        };
        for file in files {
            let source = std::fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
            for (number, line) in code_lines(non_test_code(&source)) {
                if patterns.iter().any(|pattern| line.contains(pattern)) {
                    let file = file.strip_prefix(repo_root()).unwrap_or(&file);
                    hits.push(format!("{}:{number}: {}", file.display(), line.trim()));
                }
            }
        }
    }
    hits
}

/// The enumeration, canonicalization, and codec layers are pure functions
/// of their inputs: workload identity, canonical keys, and wire bytes must
/// be identical across runs, machines, and resumes. A wall-clock read
/// anywhere in them would silently break that.
#[test]
fn deterministic_layers_never_read_the_clock() {
    let root = repo_root();
    let roots = [
        root.join("crates/ace/src"),
        root.join("crates/analyze/src"),
        root.join("crates/vfs/src/codec.rs"),
    ];
    let hits = scan(&roots, &["SystemTime::now", "Instant::now"]);
    assert!(
        hits.is_empty(),
        "wall-clock reads in deterministic layers:\n{}",
        hits.join("\n")
    );
}

/// The distributed layer runs in long-lived daemons and remote workers; a
/// panic there tears down every in-flight shard. Non-test code must
/// propagate `FsResult` errors (or recover poisoned locks via
/// `PoisonError::into_inner`) instead of unwrapping.
#[test]
fn distrib_non_test_code_never_unwraps() {
    let roots = [repo_root().join("crates/harness/src/distrib")];
    let hits = scan(&roots, &[".unwrap()", ".expect("]);
    assert!(
        hits.is_empty(),
        "unwrap/expect in distrib non-test code:\n{}",
        hits.join("\n")
    );
}

/// Every frame-tag constant in `protocol::wire` must be named in
/// `docs/PROTOCOL.md` (as the CamelCase frame name the table uses), so new
/// frames cannot ship undocumented.
#[test]
fn every_wire_tag_is_documented() {
    let root = repo_root();
    let protocol = std::fs::read_to_string(root.join("crates/harness/src/distrib/protocol.rs"))
        .expect("protocol.rs exists");
    let spec =
        std::fs::read_to_string(root.join("docs/PROTOCOL.md")).expect("docs/PROTOCOL.md exists");

    let mut tags = Vec::new();
    for line in protocol.lines() {
        let Some(rest) = line.trim_start().strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, _)) = rest.split_once(": u8") else {
            continue;
        };
        tags.push(name.trim().to_string());
    }
    assert!(
        tags.len() >= 15,
        "expected the full wire-tag roster in protocol.rs, found {tags:?}"
    );

    let camel = |name: &str| {
        name.split('_')
            .map(|word| {
                let mut chars = word.chars();
                let first = chars.next().into_iter().collect::<String>();
                first + &chars.as_str().to_lowercase()
            })
            .collect::<String>()
    };
    let missing: Vec<String> = tags
        .iter()
        .map(|tag| camel(tag))
        .filter(|name| !spec.contains(&format!("`{name}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "wire tags not named in docs/PROTOCOL.md: {missing:?}"
    );
}
