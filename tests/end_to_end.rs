//! Cross-crate integration tests: ACE workloads driven through CrashMonkey
//! against every simulated file system.

use b3::prelude::*;
use b3_harness::baseline::{regression_suite_covers, RandomWorkloads};
use b3_harness::corpus;
use b3_vfs::workload::OpKind;

/// The full seq-1 space on a patched CowFs must produce zero bug reports:
/// exhaustive generation is only useful if the checker has no false
/// positives.
#[test]
fn seq1_exhaustive_run_is_clean_on_patched_cowfs() {
    let bounds = Bounds::paper_seq1();
    let workloads: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
    assert!(workloads.len() >= 200);
    let spec = CowFsSpec::patched();
    let summary = run_stream(&spec, workloads, &RunConfig::default());
    assert!(
        summary.reports.is_empty(),
        "false positives on patched CowFs: {:?}",
        summary
            .reports
            .iter()
            .map(|r| &r.workload_name)
            .collect::<Vec<_>>()
    );
    assert!(summary.tested > 150, "most seq-1 workloads must execute");
}

/// seq-1 workloads on the paper's evaluation kernel (4.16) find the
/// single-operation new bugs of Table 5 (e.g. blocks lost after fsync).
#[test]
fn seq1_on_evaluation_kernel_finds_single_op_new_bugs() {
    let bounds = Bounds::paper_seq1();
    let workloads: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
    let spec = CowFsSpec::new(KernelEra::V4_16);
    let summary = run_stream(&spec, workloads, &RunConfig::default());
    assert!(
        !summary.reports.is_empty(),
        "seq-1 must reveal bugs on 4.16"
    );
    let groups = group_reports(&summary.reports);
    assert!(
        groups
            .iter()
            .any(|g| g.consequence == Consequence::BlocksLost),
        "the falloc KEEP_SIZE bug (new bug 8) is a seq-1 bug: {groups:?}"
    );
}

/// A targeted seq-2 subspace (link + write) finds the hard-link family of
/// bugs on an old kernel, and grouping by (skeleton, consequence) collapses
/// the many failing workloads into a handful of distinct bugs.
#[test]
fn seq2_link_subspace_finds_and_groups_bugs() {
    let bounds = Bounds::paper_seq2().with_ops(vec![OpKind::Link, OpKind::WriteBuffered]);
    let workloads: Vec<Workload> = WorkloadGenerator::new(bounds).collect();
    assert!(!workloads.is_empty());
    let spec = CowFsSpec::new(KernelEra::V3_13);
    let summary = run_stream(&spec, workloads, &RunConfig::default());
    assert!(!summary.reports.is_empty());
    let groups = group_reports(&summary.reports);
    assert!(
        groups.len() < summary.reports.len(),
        "grouping must collapse duplicate manifestations"
    );

    // The known-bug database suppresses already-reported findings.
    let mut db = KnownBugDatabase::new();
    for group in &groups {
        db.insert(&group.skeleton, group.consequence, "already reported");
    }
    let (new, known) = db.partition(&groups);
    assert!(new.is_empty());
    assert_eq!(known.len(), groups.len());
}

/// Every file system under test survives its own clean-unmount/remount cycle
/// for a representative workload (no crash involved).
#[test]
fn all_file_systems_round_trip_cleanly() {
    let specs: Vec<Box<dyn FsSpec + Sync>> = vec![
        Box::new(CowFsSpec::patched()),
        Box::new(FlashFsSpec::patched()),
        Box::new(JournalFsSpec::patched()),
        Box::new(VeriFsSpec::patched()),
    ];
    for spec in &specs {
        let mut fs = spec.mkfs(Box::new(RamDisk::new(4096))).unwrap();
        fs.mkdir("A").unwrap();
        fs.create("A/foo").unwrap();
        fs.write("A/foo", 0, &[42u8; 5000], b3_vfs::fs::WriteMode::Buffered)
            .unwrap();
        fs.setxattr("A/foo", "user.k", b"v").unwrap();
        let device = fs.unmount().unwrap();
        let fs = spec.mount(device).unwrap();
        assert_eq!(fs.metadata("A/foo").unwrap().size, 5000, "{}", spec.name());
        assert_eq!(fs.getxattr("A/foo", "user.k").unwrap(), b"v");
    }
}

/// The corpus-driven headline numbers of §6.2: 24 of 26 previously reported
/// bugs reproduced, 10 new file-system bugs plus the FSCQ bug found.
#[test]
fn corpus_headline_numbers_match_the_paper() {
    let known = corpus::known_bugs();
    let reproduced = known.iter().filter(|e| e.is_runnable()).count();
    let unique_reproduced = known
        .iter()
        .filter(|e| e.is_runnable() && !e.id.ends_with("-f2fs"))
        .count();
    assert_eq!(unique_reproduced, 24, "24 of 26 known bugs reproduce");
    assert!(reproduced >= 24);
    assert_eq!(
        known.iter().filter(|e| !e.is_runnable()).count(),
        2,
        "two known bugs stay out of reach, as in the paper"
    );
    let new = corpus::new_bugs();
    assert_eq!(new.len(), 11, "10 new FS bugs + 1 FSCQ bug");
}

/// Smoke test for the quickstart path, through the `b3` facade: one
/// representative known-bug corpus entry per file system must reproduce its
/// reported consequence under CrashMonkey, and the same workload on the
/// fully patched file system stays clean. (The exhaustive per-entry replay
/// of the whole corpus lives in `b3-harness`'s own corpus tests.)
#[test]
fn known_bug_corpus_smoke_reproduces_one_bug_per_file_system() {
    use b3_harness::FsKind;

    let entries = corpus::known_bugs();
    for kind in [FsKind::Cow, FsKind::Journal, FsKind::Flash] {
        let entry = entries
            .iter()
            .find(|e| e.fs == kind && e.is_runnable())
            .unwrap_or_else(|| panic!("no runnable corpus entry for {kind:?}"));
        let check = entry
            .replay()
            .unwrap_or_else(|e| panic!("{} failed to replay: {e}", entry.id));
        assert!(
            !check.outcome.bugs.is_empty(),
            "{}: no bug detected on the buggy era",
            entry.id
        );
        assert!(
            check.detected_expected,
            "{}: observed {:?}, expected one of {:?}",
            entry.id, check.observed, entry.expected
        );

        let patched = entry
            .replay_patched()
            .unwrap_or_else(|e| panic!("{} failed on patched fs: {e}", entry.id));
        assert!(
            patched.bugs.is_empty(),
            "{}: false positive on patched fs: {:?}",
            entry.id,
            patched.bugs
        );
    }
}

/// The application-level corpus: every seeded WAL/KV engine bug must be
/// detected with its expected consequence by the transaction oracle on two
/// different (patched) host file systems, and the fixed engine must replay
/// the same workloads clean. (The per-entry detail tests, including the
/// journaling host masking the data-fsync bug, live in `b3-app`'s corpus
/// tests.)
#[test]
fn app_corpus_smoke_detects_every_seeded_engine_bug() {
    use b3_vfs::fs::FsSpec;

    let hosts: [Box<dyn FsSpec>; 2] = [
        Box::new(b3_fs_cow::CowFsSpec::new(b3_vfs::KernelEra::Patched)),
        Box::new(b3_fs_flash::FlashFsSpec::new(b3_vfs::KernelEra::Patched)),
    ];
    let entries = b3::app::corpus::seeded_bugs();
    assert_eq!(entries.len(), 3, "three seeded engine bugs");
    for host in &hosts {
        for entry in &entries {
            let check = entry
                .replay(host.as_ref())
                .unwrap_or_else(|e| panic!("{} failed to replay: {e}", entry.id));
            assert!(
                check.detected_expected,
                "{} on {}: observed {:?}, expected one of {:?}",
                entry.id,
                host.name(),
                check.observed,
                entry.expected
            );
            let fixed = entry
                .replay_fixed(host.as_ref())
                .unwrap_or_else(|e| panic!("{} failed on the fixed engine: {e}", entry.id));
            assert!(
                fixed.bugs.is_empty(),
                "{} on {}: false positive on the fixed engine: {:?}",
                entry.id,
                host.name(),
                fixed.bugs
            );
        }
    }
}

/// The regression-suite baseline (today's xfstests practice) covers the
/// skeletons of previously reported bugs but not the skeletons of the new
/// bugs ACE found — the motivation for systematic testing in §2.
#[test]
fn regression_baseline_misses_new_bug_skeletons() {
    let mut missed = 0;
    for entry in corpus::new_bugs() {
        if !entry.is_runnable() {
            continue;
        }
        if !regression_suite_covers(&entry.workload()) {
            missed += 1;
        }
    }
    assert!(
        missed >= 5,
        "most new-bug skeletons must be absent from the regression suite (missed {missed})"
    );
}

/// Random (fuzz-style) generation over the same bounds is valid but
/// duplicates skeletons heavily, unlike exhaustive enumeration.
#[test]
fn random_baseline_produces_valid_but_redundant_workloads() {
    use std::collections::HashSet;
    let random: Vec<Workload> = RandomWorkloads::new(Bounds::paper_seq2(), 1)
        .take(200)
        .collect();
    assert_eq!(random.len(), 200);
    let skeletons: HashSet<String> = random.iter().map(Workload::skeleton_string).collect();
    assert!(
        skeletons.len() < random.len(),
        "random sampling revisits skeletons while ACE enumerates each once"
    );
}
